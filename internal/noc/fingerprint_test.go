package noc

import (
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// TestFingerprintStable: a zero config and its explicit defaults hash
// identically, and the digest is deterministic across calls.
func TestFingerprintStable(t *testing.T) {
	zero := Config{}
	explicit := Config{
		Mesh:  topology.New10x10(),
		Width: tech.Width16B, VCsPerClass: 8, BufDepth: 4,
		EscapeTimeout: 16, MulticastEpoch: 256, VCTTableSize: 64,
		WireMMPerCycle: 2.5, LocalSpeedup: 1,
		ShortcutWidthBytes: tech.ShortcutWidthBytes,
	}
	if zero.Fingerprint() != explicit.Fingerprint() {
		t.Error("zero config and explicit defaults fingerprint differently")
	}
	if zero.Fingerprint() != zero.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
	if len(zero.Fingerprint()) != 32 {
		t.Errorf("fingerprint length %d, want 32 hex chars", len(zero.Fingerprint()))
	}
}

// TestFingerprintSensitivity: every semantically meaningful mutation
// must change the digest — a collision here silently serves one
// design's results for another.
func TestFingerprintSensitivity(t *testing.T) {
	base := Config{Mesh: topology.New10x10()}
	fp := base.Fingerprint()
	mutations := map[string]func(c *Config){
		"width":          func(c *Config) { c.Width = tech.Width4B },
		"vcs":            func(c *Config) { c.VCsPerClass = 4 },
		"buf-depth":      func(c *Config) { c.BufDepth = 8 },
		"escape-timeout": func(c *Config) { c.EscapeTimeout = 32 },
		"shortcuts":      func(c *Config) { c.Shortcuts = []shortcut.Edge{{From: 0, To: 99}} },
		"wire-shortcuts": func(c *Config) {
			c.Shortcuts = []shortcut.Edge{{From: 0, To: 99}}
			c.WireShortcuts = true
		},
		"shortcut-order": func(c *Config) {
			c.Shortcuts = []shortcut.Edge{{From: 90, To: 9}, {From: 0, To: 99}}
		},
		"rf-enabled":   func(c *Config) { c.RFEnabled = []int{0, 5, 9} },
		"multicast":    func(c *Config) { c.Multicast = MulticastVCT },
		"mesh-ber":     func(c *Config) { c.Fault.MeshBER = 1e-6 },
		"fault-seed":   func(c *Config) { c.Fault.Seed = 99 },
		"integrity":    func(c *Config) { c.Integrity = true },
		"watchdog":     func(c *Config) { c.Watchdog = WatchdogConfig{Enabled: true} },
		"adaptive-rte": func(c *Config) { c.AdaptiveRouting = true },
		"mesh-size":    func(c *Config) { c.Mesh = topology.New(8, 8) },
	}
	seen := map[string]string{fp: "base"}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		got := c.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("mutation %q collides with %q (fingerprint %s)", name, prev, got)
		}
		seen[got] = name
	}
}

// TestFingerprintIgnoresStepWorkers: execution parallelism is excluded
// by design — results are bit-identical at every worker count, so runs
// differing only in StepWorkers must share a cache entry.
func TestFingerprintIgnoresStepWorkers(t *testing.T) {
	a := Config{Mesh: topology.New10x10()}
	b := a
	b.StepWorkers = 8
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("StepWorkers leaked into the fingerprint")
	}
}
