package noc

// Stats accumulates raw activity counters over a simulation. The power
// package converts them, together with the Config, into energy and
// average power; the experiments package turns them into the paper's
// latency and distance-histogram figures.
type Stats struct {
	Cycles int64

	// Unicast packet accounting. A packet's latency is measured from
	// message creation to tail-flit ejection at the destination.
	PacketsInjected int64
	PacketsEjected  int64
	FlitsInjected   int64
	FlitsEjected    int64
	PacketLatency   int64 // sum over ejected packets (head inject -> tail eject)
	FlitLatency     int64 // sum of per-flit latencies (each flit timestamped at its own injection cycle)
	HopSum          int64 // router hops traversed, summed over ejected packets

	// Activity counters for the energy model.
	RouterTraversals   int64   // flit-through-router events (buffer+xbar+arb)
	MeshFlitHops       int64   // flits crossing inter-router mesh links
	LocalFlitHops      int64   // flits crossing NI<->router local links
	WireShortcutFlitMM float64 // flit-millimeters over wire shortcut links
	RFShortcutBits     int64   // bits moved over RF-I shortcut bands
	RFMulticastBits    int64   // bits transmitted on the RF multicast band
	RFMulticastRxBits  int64   // bits received across all non-gated receivers
	RFGatedRxFlits     int64   // receiver-flits saved by DBV power gating

	// Multicast delivery accounting (per destination core served).
	MulticastMessages       int64
	MulticastDeliveries     int64
	MulticastLatency        int64 // sum over deliveries, creation -> delivery
	MulticastFlitsDelivered int64
	MulticastFlitLatency    int64

	// VCT tree-table behaviour.
	VCTHits   int64
	VCTMisses int64

	// Deadlock-avoidance behaviour: packets re-routed to escape VCs.
	EscapeSwitches int64

	// Fault-injection and recovery behaviour: flits failing CRC on a
	// link, link-layer retransmissions, links declared permanently dead
	// (shortcut bands, mesh links, the multicast band), and in-flight
	// packets re-routed onto the surviving topology after a failure.
	FlitsCorrupted   int64
	Retransmits      int64
	LinkFailures     int64
	DegradedReroutes int64

	// Adversarial fault modes (FaultConfig rates and scheduled events):
	// whole packets diverted to a wrong-but-live output port at route
	// computation, packets ejected at the wrong router after an RF band
	// mis-tune, duplicate copies spawned by an RF band re-trigger, credits
	// silently leaked from VC buffers, and VCs wedged out of arbitration.
	MisroutedPackets    int64
	MisdeliveredPackets int64
	DuplicatesInjected  int64
	CreditLeaks         int64
	StuckVCs            int64

	// End-to-end integrity layer (Config.Integrity): duplicate deliveries
	// suppressed by receiver-side dedup, checksum mismatches detected at
	// ejection, NACK-style source retransmissions, and packets abandoned
	// after the retry budget ran out.
	DuplicatesDropped    int64
	ChecksumFailures     int64
	IntegrityRetransmits int64
	PacketsLost          int64

	// Watchdog recovery (Config.Watchdog): escalations fired, leaked
	// credits repaired, VCs unstuck, blocked wormholes forced onto the
	// escape class, stalled packets scrubbed out of the fabric and
	// re-injected at their source, and the flits those scrubs removed
	// (a term of the conservation identity; see AuditReport).
	WatchdogRecoveries    int64
	RecoveryCreditRepairs int64
	RecoveryVCUnsticks    int64
	RecoveryEscapes       int64
	RecoveryReinjections  int64
	FlitsScrubbed         int64

	// Runtime reconfiguration activity (noc.Network.Reconfigure).
	Reconfigurations     int64
	ReconfigUpdateCycles int64

	// MsgsByDistance histograms ejected unicast messages by the manhattan
	// distance between source and destination router (Figure 1). Index is
	// hop distance; length is W+H-1 for the simulated mesh (19 on the
	// paper's 10x10).
	MsgsByDistance []int64
}

// AvgPacketLatency returns the mean packet latency in cycles over ejected
// unicast packets plus multicast deliveries, the paper's "average network
// latency" metric. Returns 0 when nothing was delivered.
func (s *Stats) AvgPacketLatency() float64 {
	n := s.PacketsEjected + s.MulticastDeliveries
	if n == 0 {
		return 0
	}
	return float64(s.PacketLatency+s.MulticastLatency) / float64(n)
}

// AvgFlitLatency returns the mean per-flit latency in cycles, the
// paper's "average network latency/flit" metric: each flit is
// timestamped at its own injection cycle (the NI serializes a message at
// one flit per cycle), so message serialization at the source does not
// count against narrow meshes -- only genuine network residence does.
func (s *Stats) AvgFlitLatency() float64 {
	n := s.FlitsEjected + s.MulticastFlitsDelivered
	if n == 0 {
		return 0
	}
	return float64(s.FlitLatency+s.MulticastFlitLatency) / float64(n)
}

// AvgHops returns the mean hop count of ejected unicast packets.
func (s *Stats) AvgHops() float64 {
	if s.PacketsEjected == 0 {
		return 0
	}
	return float64(s.HopSum) / float64(s.PacketsEjected)
}

// Throughput returns ejected flits per cycle.
func (s *Stats) Throughput() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FlitsEjected) / float64(s.Cycles)
}
