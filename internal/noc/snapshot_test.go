package noc

import (
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// snapScenario is one design point plus a deterministic event script for
// the round-trip property: the traffic and kill events are pure
// functions of the cycle, so the stream replays identically on the
// uninterrupted run, the checkpointed run, and the restored run.
type snapScenario struct {
	name    string
	cfg     func() Config
	rate    float64
	mcRate  float64 // multicast injection probability per cycle
	events  func(n *Network, now int64)
	cycles  int64
	persist bool // run Reconfigure mid-script
}

func snapScenarios() []snapScenario {
	mesh := topology.New10x10()
	static := func() Config {
		return Config{
			Mesh: mesh, Width: tech.Width16B,
			Shortcuts: []shortcut.Edge{{From: 0, To: 99}, {From: 9, To: 90}, {From: 44, To: 55}},
		}
	}
	return []snapScenario{
		{
			name:   "baseline-mesh",
			cfg:    func() Config { return Config{Mesh: mesh, Width: tech.Width16B} },
			rate:   0.3,
			cycles: 600,
		},
		{
			name:   "static-shortcuts-adaptive",
			cfg:    func() Config { c := static(); c.AdaptiveRouting = true; return c },
			rate:   0.4,
			cycles: 600,
		},
		{
			name: "rf-multicast",
			cfg: func() Config {
				c := static()
				c.Multicast = MulticastRF
				c.RFEnabled = mesh.RFPlacement(25)
				return c
			},
			rate:   0.2,
			mcRate: 0.05,
			cycles: 600,
		},
		{
			name: "vct-multicast",
			cfg: func() Config {
				c := Config{Mesh: mesh, Width: tech.Width16B, Multicast: MulticastVCT, VCTTableSize: 8}
				return c
			},
			rate:   0.2,
			mcRate: 0.05,
			cycles: 600,
		},
		{
			name: "faults-and-kills",
			cfg: func() Config {
				c := static()
				c.Fault = FaultConfig{MeshBER: 1e-3, RFBER: 5e-3, Seed: 7}
				return c
			},
			rate:   0.3,
			cycles: 900,
			events: func(n *Network, now int64) {
				switch now {
				case 150:
					_ = n.KillShortcut(0)
				case 300:
					_ = n.KillMeshLink(12, 13)
				}
			},
		},
		{
			name: "multicast-band-kill",
			cfg: func() Config {
				c := static()
				c.Multicast = MulticastRF
				c.RFEnabled = mesh.RFPlacement(25)
				return c
			},
			rate:   0.2,
			mcRate: 0.08,
			cycles: 700,
			events: func(n *Network, now int64) {
				if now == 250 {
					_ = n.KillMulticastBand()
				}
			},
		},
		{
			name:    "reconfigure",
			cfg:     static,
			rate:    0.3,
			cycles:  800,
			persist: true,
		},
		{
			name: "integrity-adversarial",
			cfg: func() Config {
				c := static()
				c.Integrity = true
				c.Watchdog = WatchdogConfig{Enabled: true, CheckEvery: 128, StallHorizon: 2_048, Grace: 256}
				c.Fault = FaultConfig{MisrouteRate: 0.01, MisdeliverRate: 0.1, DuplicateRate: 0.1, RetryLimit: 4, Seed: 11}
				return c
			},
			rate:   0.4,
			cycles: 900,
		},
		{
			name: "chaos-leak-stick",
			cfg: func() Config {
				c := static()
				c.Integrity = true
				c.Watchdog = WatchdogConfig{Enabled: true, CheckEvery: 128, StallHorizon: 2_048, Grace: 256}
				c.Fault = FaultConfig{CreditLeakRate: 0.002, StuckVCRate: 0.001, RetryLimit: 4, Seed: 13}
				return c
			},
			rate:   0.3,
			cycles: 900,
			events: func(n *Network, now int64) {
				switch now {
				case 150:
					_ = n.LeakLinkCredit(12, 13)
				case 300:
					_ = n.StickVC(45, portNorth)
				}
			},
		},
	}
}

// snapInject injects traffic for one cycle as a pure function of
// (seed, cycle): a fresh RNG per cycle makes the stream independent of
// run history, so it replays identically after a restore.
func snapInject(n *Network, sc snapScenario, seed, now int64) {
	r := rng.New(seed ^ (now * 0x9e3779b9))
	mesh := n.Config().Mesh
	if r.Float64() < sc.rate {
		src, dst := r.Intn(mesh.N()), r.Intn(mesh.N())
		if src != dst {
			cl := Request
			if r.Float64() < 0.3 {
				cl = Data
			}
			n.Inject(Message{Src: src, Dst: dst, Class: cl, Inject: now})
		}
	}
	if sc.mcRate > 0 && r.Float64() < sc.mcRate {
		caches := mesh.Caches()
		src := caches[r.Intn(len(caches))]
		var dbv uint64
		for i := 0; i < 5; i++ {
			dbv |= 1 << uint(r.Intn(len(mesh.Cores())))
		}
		n.Inject(Message{Src: src, Class: Invalidate, Inject: now, Multicast: true, DBV: dbv})
	}
}

// snapDrive advances n until Now reaches target, replaying the
// scenario's event script and traffic stream keyed by Now. Reconfigure
// (persist scenarios) advances Now internally; the Now-keyed replay
// stays aligned across runs regardless.
func snapDrive(t *testing.T, n *Network, sc snapScenario, seed, target int64) {
	t.Helper()
	for n.Now() < target {
		now := n.Now()
		if sc.events != nil {
			sc.events(n, now)
		}
		if sc.persist && now == 200 && n.InFlight() == 0 {
			if err := n.Reconfigure([]shortcut.Edge{{From: 5, To: 94}, {From: 90, To: 9}}); err != nil {
				t.Fatalf("reconfigure: %v", err)
			}
			continue
		}
		if sc.persist && now == 200 {
			// Not quiesced this run; push the replan to the next cycle by
			// simply stepping (deterministic on every run since InFlight is
			// part of the replayed state).
		}
		snapInject(n, sc, seed, now)
		n.Step()
	}
}

// TestSnapshotRoundTripBitIdentical is the core checkpoint property:
// for every design point, a run snapshotted at an arbitrary cycle and
// restored into a fresh network finishes with Stats bit-identical to
// the uninterrupted run.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	for _, sc := range snapScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 42} {
				// Uninterrupted reference.
				ref := New(sc.cfg())
				snapDrive(t, ref, sc, seed, sc.cycles)

				// Checkpointed run: snapshot at a pseudo-random midpoint.
				cut := 50 + rng.New(seed*31+int64(len(sc.name))).Int63n(sc.cycles/2)
				a := New(sc.cfg())
				snapDrive(t, a, sc, seed, cut)
				blob, err := a.CheckpointState()
				if err != nil {
					t.Fatalf("seed %d: snapshot at cycle %d: %v", seed, a.Now(), err)
				}

				b := New(sc.cfg())
				if err := b.RestoreCheckpointState(blob); err != nil {
					t.Fatalf("seed %d: restore: %v", seed, err)
				}
				if b.Now() != a.Now() {
					t.Fatalf("seed %d: restored Now = %d, want %d", seed, b.Now(), a.Now())
				}
				if rep := b.Audit(); rep.ConservationError() != 0 || rep.CreditViolations != 0 {
					t.Fatalf("seed %d: restored network fails audit: %+v", seed, rep)
				}

				snapDrive(t, a, sc, seed, sc.cycles)
				snapDrive(t, b, sc, seed, sc.cycles)
				sa, sb := a.Stats(), b.Stats()
				if !reflect.DeepEqual(sa, sb) {
					t.Fatalf("seed %d cut %d: restored run diverges:\n  interrupted: %+v\n  restored:    %+v", seed, cut, sa, sb)
				}
				if sref := ref.Stats(); !reflect.DeepEqual(sref, sa) {
					t.Fatalf("seed %d: checkpointed run diverges from uninterrupted run:\n  uninterrupted: %+v\n  checkpointed:  %+v", seed, sref, sa)
				}
				if a.InFlight() != b.InFlight() {
					t.Fatalf("seed %d: in-flight mismatch after restore: %d vs %d", seed, a.InFlight(), b.InFlight())
				}
			}
		})
	}
}

// TestSnapshotDrainEquivalence: a restored network must also drain
// identically, not just match under injection.
func TestSnapshotDrainEquivalence(t *testing.T) {
	sc := snapScenarios()[1] // static shortcuts + adaptive
	a := New(sc.cfg())
	snapDrive(t, a, sc, 9, 400)
	blob, err := a.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	b := New(sc.cfg())
	if err := b.RestoreCheckpointState(blob); err != nil {
		t.Fatal(err)
	}
	if !a.Drain(100000) || !b.Drain(100000) {
		t.Fatal("networks did not drain")
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("drained stats diverge:\n  a: %+v\n  b: %+v", a.Stats(), b.Stats())
	}
}

// TestSnapshotFingerprintMismatch: a snapshot must refuse to restore
// into a differently-configured network.
func TestSnapshotFingerprintMismatch(t *testing.T) {
	mesh := topology.New10x10()
	a := New(Config{Mesh: mesh, Width: tech.Width16B})
	blob, err := a.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"different-width":    {Mesh: mesh, Width: tech.Width8B},
		"different-vcs":      {Mesh: mesh, Width: tech.Width16B, VCsPerClass: 4},
		"adaptive":           {Mesh: mesh, Width: tech.Width16B, AdaptiveRouting: true},
		"fault-model":        {Mesh: mesh, Width: tech.Width16B, Fault: FaultConfig{MeshBER: 0.01}},
		"smaller-mesh":       {Mesh: topology.New(6, 6), Width: tech.Width16B},
		"multicast-vct":      {Mesh: mesh, Width: tech.Width16B, Multicast: MulticastVCT},
		"escape-timeout":     {Mesh: mesh, Width: tech.Width16B, EscapeTimeout: 99},
		"buffering":          {Mesh: mesh, Width: tech.Width16B, BufDepth: 8},
		"wire-shortcut-mode": {Mesh: mesh, Width: tech.Width16B, WireShortcuts: true, Shortcuts: []shortcut.Edge{{From: 1, To: 98}}},
	} {
		if err := New(cfg).RestoreCheckpointState(blob); err == nil {
			t.Errorf("%s: snapshot restored into a mismatched configuration", name)
		}
	}
	// Sanity: the same configuration does restore.
	if err := New(Config{Mesh: mesh, Width: tech.Width16B}).RestoreCheckpointState(blob); err != nil {
		t.Fatalf("matching configuration refused: %v", err)
	}
	// A differing *shortcut plan* is state, not configuration: restoring a
	// plan-carrying snapshot into a network built with another plan works
	// and installs the snapshot's plan.
	withPlan := New(Config{Mesh: mesh, Width: tech.Width16B, Shortcuts: []shortcut.Edge{{From: 3, To: 96}}})
	planBlob, err := withPlan.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	other := New(Config{Mesh: mesh, Width: tech.Width16B})
	if err := other.RestoreCheckpointState(planBlob); err != nil {
		t.Fatalf("plan-differing restore refused: %v", err)
	}
	if got := other.Config().Shortcuts; len(got) != 1 || got[0] != (shortcut.Edge{From: 3, To: 96}) {
		t.Fatalf("restored plan = %v, want the snapshot's", got)
	}
}

// TestSnapshotRejectsTruncation: every prefix of a valid snapshot must
// be rejected without panicking.
func TestSnapshotRejectsTruncation(t *testing.T) {
	sc := snapScenarios()[2] // RF multicast: exercises every section
	a := New(sc.cfg())
	snapDrive(t, a, sc, 3, 300)
	blob, err := a.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	// Sample prefixes (every length would be slow at ~100s of KB).
	for cut := 0; cut < len(blob); cut += 1 + len(blob)/257 {
		if err := New(sc.cfg()).RestoreCheckpointState(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(blob))
		}
	}
}

// FuzzRestoreState: arbitrary snapshot blobs must never panic the
// decoder — errors only.
func FuzzRestoreState(f *testing.F) {
	mesh := topology.New(6, 6)
	cfg := Config{Mesh: mesh, Width: tech.Width16B, VCsPerClass: 2, BufDepth: 2}
	seedNet := New(cfg)
	for i := 0; i < 120; i++ {
		seedNet.Inject(Message{Src: i % 36, Dst: (i*7 + 3) % 36, Class: Request, Inject: seedNet.Now()})
		seedNet.Step()
	}
	blob, err := seedNet.CheckpointState()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{snapshotVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := New(cfg)
		if err := n.RestoreCheckpointState(data); err != nil {
			return
		}
		// A blob that restores cleanly must leave a consistent network.
		if rep := n.Audit(); rep.CreditViolations != 0 {
			t.Fatalf("restored blob passes decode but fails audit: %+v", rep)
		}
	})
}
