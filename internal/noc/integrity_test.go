package noc

import (
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

func integrityConfig(m *topology.Mesh, fault FaultConfig) Config {
	return Config{
		Mesh:      m,
		Width:     tech.Width16B,
		Shortcuts: shortcut.SelectMaxCost(m.Graph(), shortcut.Params{Budget: 4}),
		Fault:     fault,
		Integrity: true,
	}
}

// With integrity off, packets carry no sequence headers and the new
// stats stay zero.
func TestIntegrityDisabledNoHeaders(t *testing.T) {
	t.Parallel()
	m := topology.New(6, 6)
	n := New(Config{Mesh: m, Width: tech.Width16B})
	injected := soakTraffic(n, m, 61, 2000, 0.3, nil)
	if !n.Drain(200_000) {
		t.Fatal("plain network failed to drain")
	}
	s := n.Stats()
	if len(injected) == 0 || s.PacketsEjected == 0 {
		t.Fatal("no traffic ran")
	}
	if s.DuplicatesDropped+s.ChecksumFailures+s.IntegrityRetransmits+s.PacketsLost != 0 {
		t.Errorf("integrity machinery active while disabled: %+v", s)
	}
}

// Duplicates injected by RF band re-triggers must be dropped at the
// receiver: exactly one delivery per sequence number, and every injected
// duplicate accounted as dropped (none may survive or linger).
func TestIntegrityDuplicateDropped(t *testing.T) {
	t.Parallel()
	m := topology.New(6, 6)
	n := New(integrityConfig(m, FaultConfig{DuplicateRate: 0.5, Seed: 17}))
	ledger := newFaultLedger()
	n.AttachObserver(ledger)
	injected := soakTraffic(n, m, 71, 4000, 0.4, nil)
	if !n.Drain(200_000) {
		t.Fatal("failed to drain")
	}
	s := n.Stats()
	if s.DuplicatesInjected == 0 {
		t.Fatal("band re-trigger never fired")
	}
	if s.DuplicatesDropped != s.DuplicatesInjected {
		t.Errorf("duplicate ledger broken: %d injected, %d dropped",
			s.DuplicatesInjected, s.DuplicatesDropped)
	}
	assertExactlyOnce(t, n, ledger, injected)
}

// A misdelivered packet (RF mis-tune, ejected at the wrong router) must
// be detected, not delivered, and repaired by a source retransmission.
func TestIntegrityMisdeliverRetransmit(t *testing.T) {
	t.Parallel()
	m := topology.New(6, 6)
	n := New(integrityConfig(m, FaultConfig{MisdeliverRate: 0.3, RetryLimit: 8, Seed: 19}))
	ledger := newFaultLedger()
	n.AttachObserver(ledger)
	injected := soakTraffic(n, m, 81, 4000, 0.4, nil)
	if !n.Drain(200_000) {
		t.Fatal("failed to drain")
	}
	s := n.Stats()
	if s.MisdeliveredPackets == 0 {
		t.Fatal("misdelivery never fired")
	}
	if s.IntegrityRetransmits == 0 {
		t.Fatal("misdeliveries detected but never retransmitted")
	}
	assertExactlyOnce(t, n, ledger, injected)
}

// Header corruption that slips past link CRC is caught by the end-to-end
// checksum and repaired from the sender-side table.
func TestIntegrityChecksumCatchesCorruption(t *testing.T) {
	t.Parallel()
	m := topology.New(6, 6)
	n := New(integrityConfig(m, FaultConfig{RetryLimit: 8, Seed: 23}))
	ledger := newFaultLedger()
	n.AttachObserver(ledger)
	corrupted := 0
	injected := soakTraffic(n, m, 91, 4000, 0.4, func(n *Network, i int) {
		if i > 500 && i%400 == 0 && corrupted < 5 {
			if n.CorruptInFlightDst((i/400)%n.Config().Mesh.N()) {
				corrupted++
			}
		}
	})
	if corrupted == 0 {
		t.Fatal("corruption hook never found a target")
	}
	if !n.Drain(200_000) {
		t.Fatal("failed to drain")
	}
	s := n.Stats()
	if s.ChecksumFailures == 0 {
		t.Fatalf("corrupted %d headers but the checksum never tripped", corrupted)
	}
	assertExactlyOnce(t, n, ledger, injected)
}

// When the retry budget runs out the packet is abandoned and accounted
// as lost — the ledger closes via PacketsLost instead of hanging.
func TestIntegrityLossAfterRetryBudget(t *testing.T) {
	t.Parallel()
	m := topology.New(6, 6)
	n := New(integrityConfig(m, FaultConfig{MisdeliverRate: 0.9, RetryLimit: 1, Seed: 29}))
	ledger := newFaultLedger()
	n.AttachObserver(ledger)
	injected := soakTraffic(n, m, 101, 4000, 0.4, nil)
	if !n.Drain(200_000) {
		t.Fatal("failed to drain")
	}
	s := n.Stats()
	if s.PacketsLost == 0 {
		t.Fatal("a 90% misdeliver rate with a 1-retry budget lost nothing")
	}
	assertExactlyOnce(t, n, ledger, injected)
}
