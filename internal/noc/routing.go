package noc

import (
	"fmt"

	"repro/internal/graph"
)

// Router ports. Each router has four mesh ports, a local port to its
// computing element, and (on RF-enabled or shortcut-attached routers) an
// RF port — the "sixth port" of Section 3.2.
const (
	portNorth = iota // +Y
	portEast         // +X
	portSouth        // -Y
	portWest         // -X
	portLocal
	portRF
	numPorts
)

func portName(p int) string {
	switch p {
	case portNorth:
		return "N"
	case portEast:
		return "E"
	case portSouth:
		return "S"
	case portWest:
		return "W"
	case portLocal:
		return "L"
	case portRF:
		return "RF"
	}
	return fmt.Sprintf("port%d", p)
}

// routeTable holds, for every router, the output port toward every
// destination, for the normal (shortest-path over the augmented topology)
// class, plus the distance-to-destination vectors that adaptive routing
// uses to enumerate minimal candidate ports. The escape class always
// routes XY and is computed on the fly.
type routeTable struct {
	// port[r][d] is the output port at router r for packets destined to
	// router d (portLocal when r == d).
	port [][]int8
	// dist[d][r] is the shortest-path distance from r to d over the
	// augmented topology.
	dist [][]int
}

// buildRoutes constructs the normal-class routing table. Without
// shortcuts this degenerates to XY; with shortcuts it is deterministic
// min-hop over the augmented graph with mesh-preferring tie-breaks
// (mesh edges are inserted into the graph before shortcut edges, and
// graph.NextHops prefers earlier adjacency entries).
//
// When the plain mesh distance equals the augmented distance for a pair,
// the XY path is used outright: this keeps zero-gain traffic off the
// shortcut bands, leaving them to the flows they were selected for.
//
// Failed links never enter the graph: dead shortcut bands are excluded
// from the augmented edges, and dead mesh links from the mesh itself
// (the XY fast paths are then disabled too, since an XY route might
// cross a dead link).
func buildRoutes(n *Network) *routeTable {
	m := n.cfg.Mesh
	t := &routeTable{port: make([][]int8, m.N())}
	live := n.liveShortcutEdges()
	meshFaulty := n.faults != nil && n.faults.meshFaults > 0
	if len(live) == 0 && !meshFaulty {
		// Pure XY; distances are manhattan.
		t.dist = make([][]int, m.N())
		for d := 0; d < m.N(); d++ {
			t.dist[d] = make([]int, m.N())
			for r := 0; r < m.N(); r++ {
				t.dist[d][r] = m.Manhattan(r, d)
			}
		}
		for r := 0; r < m.N(); r++ {
			t.port[r] = make([]int8, m.N())
			for d := 0; d < m.N(); d++ {
				t.port[r][d] = int8(xyPort(n, r, d))
			}
		}
		return t
	}
	g := n.meshGraph()
	for _, e := range live {
		g.AddEdge(e.From, e.To, 1)
	}
	meshDist := n.meshGraph().AllPairs()
	for r := range t.port {
		t.port[r] = make([]int8, m.N())
	}
	t.dist = make([][]int, m.N())
	for d := 0; d < m.N(); d++ {
		next := g.NextHops(d)
		distTo := distancesTo(g, d)
		t.dist[d] = distTo
		for r := 0; r < m.N(); r++ {
			if r == d {
				t.port[r][d] = portLocal
				continue
			}
			if meshDist[r][d] == distTo[r] && !meshFaulty {
				// No shortcut gain from here: route XY.
				t.port[r][d] = int8(xyPort(n, r, d))
				continue
			}
			t.port[r][d] = int8(portToward(n, r, next[r]))
		}
	}
	return t
}

// distancesTo returns the distance from every vertex to dst in g.
func distancesTo(g *graph.Digraph, dst int) []int {
	// Transpose trick via NextHops would recompute; do it directly.
	rev := graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, e := range g.OutEdges(v) {
			rev.AddEdge(e.To, e.From, e.Weight)
		}
	}
	return rev.ShortestFrom(dst)
}

// portToward maps a next-hop router to an output port at r: a mesh port
// for neighbors, the RF port for this router's shortcut destination.
func portToward(n *Network, r, next int) int {
	m := n.cfg.Mesh
	cr, cn := m.Coord(r), m.Coord(next)
	switch {
	case cn.X == cr.X && cn.Y == cr.Y+1:
		return portNorth
	case cn.X == cr.X+1 && cn.Y == cr.Y:
		return portEast
	case cn.X == cr.X && cn.Y == cr.Y-1:
		return portSouth
	case cn.X == cr.X-1 && cn.Y == cr.Y:
		return portWest
	}
	if sc := n.shortcutFrom[r]; sc == next {
		return portRF
	}
	panic(fmt.Sprintf("noc: router %d has no port toward %d", r, next))
}

// xyPort computes dimension-ordered (X then Y) routing: the deadlock-free
// route the baseline mesh and the escape VCs use.
func xyPort(n *Network, r, d int) int {
	if r == d {
		return portLocal
	}
	m := n.cfg.Mesh
	cr, cd := m.Coord(r), m.Coord(d)
	switch {
	case cd.X > cr.X:
		return portEast
	case cd.X < cr.X:
		return portWest
	case cd.Y > cr.Y:
		return portNorth
	default:
		return portSouth
	}
}

// neighborThrough returns the router on the other end of a mesh output
// port, or -1 if the port exits the mesh.
func neighborThrough(n *Network, r, port int) int {
	m := n.cfg.Mesh
	c := m.Coord(r)
	switch port {
	case portNorth:
		if c.Y+1 < m.H {
			return m.ID(c.X, c.Y+1)
		}
	case portEast:
		if c.X+1 < m.W {
			return m.ID(c.X+1, c.Y)
		}
	case portSouth:
		if c.Y-1 >= 0 {
			return m.ID(c.X, c.Y-1)
		}
	case portWest:
		if c.X-1 >= 0 {
			return m.ID(c.X-1, c.Y)
		}
	}
	return -1
}

// adaptiveCandidates lists every output port at r that lies on a minimal
// path to dst through the augmented topology: the candidate set of the
// HPCA-2008 adaptive-routing study. The RF port qualifies when the
// router's outbound shortcut shortens the remaining distance like any
// other hop.
func (n *Network) adaptiveCandidates(r, dst int, out []int8) []int8 {
	out = out[:0]
	distTo := n.routes.dist[dst]
	want := distTo[r] - 1
	for p := portNorth; p <= portWest; p++ {
		if nb := neighborThrough(n, r, p); nb >= 0 && distTo[nb] == want && !n.linkDead(r, p) {
			out = append(out, int8(p))
		}
	}
	if sc := n.shortcutFrom[r]; sc >= 0 && distTo[sc] == want && !n.linkDead(r, portRF) {
		out = append(out, int8(portRF))
	}
	return out
}

// freeVCCount counts unoccupied VCs of a class at the downstream input
// port behind output port out of router r (the congestion signal the
// adaptive router selects by).
func (n *Network) freeVCCount(r, out, class int) int {
	var target *routerState
	var inPort int
	if out == portRF {
		dst := n.shortcutFrom[r]
		if dst < 0 {
			return 0
		}
		target = &n.routers[dst]
		inPort = portRF
	} else {
		nb := neighborThrough(n, r, out)
		if nb < 0 {
			return 0
		}
		target = &n.routers[nb]
		inPort = oppositePort(out)
	}
	lo, hi := 0, n.cfg.VCsPerClass
	if class == vcClassEscape {
		lo, hi = n.cfg.VCsPerClass, 2*n.cfg.VCsPerClass
	}
	free := 0
	for i := lo; i < hi; i++ {
		if target.vcs[inPort][i].free() {
			free++
		}
	}
	return free
}
