package noc

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// faultLedger counts per-message deliveries for exactly-once assertions.
type faultLedger struct {
	BaseObserver
	delivered map[[3]int64]int
	dups      int
}

func newFaultLedger() *faultLedger {
	return &faultLedger{delivered: map[[3]int64]int{}}
}

func (l *faultLedger) PacketDelivered(msg Message, _ int64, _ int) {
	k := [3]int64{msg.Inject, int64(msg.Src), int64(msg.Dst)}
	l.delivered[k]++
	if l.delivered[k] > 1 {
		l.dups++
	}
}

// TestFaultTransientRetransmissionDelivery checks that a lossy-but-live
// network (CRC failures repaired by retransmission) still delivers every
// packet exactly once, with no link ever declared dead.
func TestFaultTransientRetransmissionDelivery(t *testing.T) {
	m := topology.New(6, 6)
	cfg := Config{
		Mesh:      m,
		Width:     tech.Width16B,
		Shortcuts: shortcut.SelectMaxCost(m.Graph(), shortcut.Params{Budget: 4}),
		Fault:     FaultConfig{MeshBER: 0.02, RFBER: 0.05, Seed: 7},
	}
	n := New(cfg)
	ledger := newFaultLedger()
	n.AttachObserver(ledger)

	rng := rand.New(rand.NewSource(42))
	injected := map[[3]int64]bool{}
	for i := 0; i < 3000; i++ {
		if rng.Float64() < 0.3 {
			src, dst := rng.Intn(m.N()), rng.Intn(m.N())
			if src != dst {
				k := [3]int64{n.Now(), int64(src), int64(dst)}
				if !injected[k] {
					injected[k] = true
					n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
				}
			}
		}
		n.Step()
	}
	if !n.Drain(200000) {
		t.Fatal("lossy network failed to drain")
	}
	s := n.Stats()
	if s.FlitsCorrupted == 0 || s.Retransmits == 0 {
		t.Errorf("expected corruption activity, got corrupted=%d retransmits=%d",
			s.FlitsCorrupted, s.Retransmits)
	}
	if s.LinkFailures != 0 {
		t.Errorf("links died under a low BER: %d failures", s.LinkFailures)
	}
	if ledger.dups != 0 || len(ledger.delivered) != len(injected) {
		t.Errorf("delivery broken: %d distinct (want %d), %d dups",
			len(ledger.delivered), len(injected), ledger.dups)
	}
	if rep := n.Audit(); rep.ConservationError() != 0 || rep.FlitsBuffered != 0 {
		t.Errorf("drained network not clean: %+v", rep)
	}
}

// TestFaultShortcutDiesAfterRetryBudget checks the full recovery chain
// on a band whose every transmission corrupts: retransmissions burn the
// retry budget, the band is declared dead, the in-flight packet falls
// back to the mesh, and delivery still happens.
func TestFaultShortcutDiesAfterRetryBudget(t *testing.T) {
	m := topology.New(6, 6)
	sc := shortcut.Edge{From: 0, To: 35}
	cfg := Config{
		Mesh:      m,
		Width:     tech.Width16B,
		Shortcuts: []shortcut.Edge{sc},
		Fault:     FaultConfig{RFBER: 1.0, Seed: 1},
	}
	n := New(cfg)
	ledger := newFaultLedger()
	n.AttachObserver(ledger)

	n.Inject(Message{Src: 0, Dst: 35, Class: Data, Inject: 0})
	if !n.Drain(20000) {
		t.Fatal("network failed to drain")
	}
	s := n.Stats()
	if s.LinkFailures != 1 {
		t.Fatalf("link failures = %d, want 1", s.LinkFailures)
	}
	if s.DegradedReroutes == 0 {
		t.Error("expected the in-flight packet to be rerouted")
	}
	if got := n.FailedShortcuts(); len(got) != 1 || got[0] != sc {
		t.Errorf("FailedShortcuts = %v, want [%v]", got, sc)
	}
	if tx, _ := n.FailedRFEndpoint(0); !tx {
		t.Error("transmitter at router 0 not marked failed")
	}
	if _, rx := n.FailedRFEndpoint(35); !rx {
		t.Error("receiver at router 35 not marked failed")
	}
	if len(ledger.delivered) != 1 || ledger.dups != 0 {
		t.Errorf("delivery broken: %d distinct, %d dups", len(ledger.delivered), ledger.dups)
	}
	// A second packet must route over the mesh without further faults.
	pre := n.Stats().FlitsCorrupted
	n.Inject(Message{Src: 0, Dst: 35, Class: Data, Inject: n.Now()})
	if !n.Drain(20000) {
		t.Fatal("post-failure packet failed to drain")
	}
	if n.Stats().FlitsCorrupted != pre {
		t.Error("dead band still corrupting traffic")
	}
}

// TestFaultKillShortcutErrors checks the declarative kill API's error
// paths.
func TestFaultKillShortcutErrors(t *testing.T) {
	m := topology.New(6, 6)
	cfg := Config{
		Mesh:      m,
		Width:     tech.Width16B,
		Shortcuts: []shortcut.Edge{{From: 1, To: 30}},
	}
	n := New(cfg)
	if err := n.KillShortcut(-1); err == nil || !strings.Contains(err.Error(), "unknown router index") {
		t.Errorf("out-of-range kill: %v", err)
	}
	if err := n.KillShortcut(5); err == nil || !strings.Contains(err.Error(), "no outbound shortcut") {
		t.Errorf("no-shortcut kill: %v", err)
	}
	if err := n.KillShortcut(1); err != nil {
		t.Fatalf("valid kill failed: %v", err)
	}
	if err := n.KillShortcut(1); err == nil || !strings.Contains(err.Error(), "already failed") {
		t.Errorf("double kill: %v", err)
	}
}

// TestFaultKillMeshLinkRefusesDisconnect checks adjacency validation and
// the connectivity guard: a kill that would disconnect the mesh is
// rejected, because degraded routing can only guarantee delivery while a
// fallback path exists.
func TestFaultKillMeshLinkRefusesDisconnect(t *testing.T) {
	// 6x6 mesh: router 0 is the corner with exactly two links, to 1
	// (east) and 6 (north). Killing both would isolate it.
	m := topology.New(6, 6)
	n := New(Config{Mesh: m, Width: tech.Width16B})
	if err := n.KillMeshLink(0, 7); err == nil || !strings.Contains(err.Error(), "not adjacent") {
		t.Errorf("non-adjacent kill: %v", err)
	}
	if err := n.KillMeshLink(0, 99); err == nil || !strings.Contains(err.Error(), "unknown router index") {
		t.Errorf("out-of-range kill: %v", err)
	}
	if err := n.KillMeshLink(0, 1); err != nil {
		t.Fatalf("first kill failed: %v", err)
	}
	if err := n.KillMeshLink(0, 6); err == nil || !strings.Contains(err.Error(), "disconnect") {
		t.Errorf("disconnecting kill not refused: %v", err)
	}
	if got := n.DeadMeshLinks(); len(got) != 1 || got[0] != [2]int{0, 1} {
		t.Errorf("DeadMeshLinks = %v, want [[0 1]]", got)
	}
}

// TestFaultMeshLinkDeathDegradedDelivery kills mesh links mid-run and
// checks that tree-escape routing keeps delivering everything exactly
// once on the wounded mesh.
func TestFaultMeshLinkDeathDegradedDelivery(t *testing.T) {
	m := topology.New(6, 6)
	cfg := Config{
		Mesh:      m,
		Width:     tech.Width16B,
		Shortcuts: shortcut.SelectMaxCost(m.Graph(), shortcut.Params{Budget: 3}),
	}
	n := New(cfg)
	ledger := newFaultLedger()
	n.AttachObserver(ledger)

	kills := [][2]int{{0, 1}, {7, 8}, {14, 20}}
	rng := rand.New(rand.NewSource(9))
	injected := map[[3]int64]bool{}
	for i := 0; i < 4000; i++ {
		if i == 500 || i == 1000 || i == 1500 {
			k := kills[i/500-1]
			if err := n.KillMeshLink(k[0], k[1]); err != nil {
				t.Fatalf("kill %v: %v", k, err)
			}
		}
		if rng.Float64() < 0.3 {
			src, dst := rng.Intn(m.N()), rng.Intn(m.N())
			if src != dst {
				key := [3]int64{n.Now(), int64(src), int64(dst)}
				if !injected[key] {
					injected[key] = true
					n.Inject(Message{Src: src, Dst: dst, Class: Data, Inject: n.Now()})
				}
			}
		}
		n.Step()
	}
	if !n.Drain(500000) {
		t.Fatal("wounded mesh failed to drain")
	}
	if ledger.dups != 0 || len(ledger.delivered) != len(injected) {
		t.Errorf("delivery broken: %d distinct (want %d), %d dups",
			len(ledger.delivered), len(injected), ledger.dups)
	}
	if got := len(n.DeadMeshLinks()); got != len(kills) {
		t.Errorf("dead mesh links = %d, want %d", got, len(kills))
	}
	if rep := n.Audit(); rep.ConservationError() != 0 || rep.FlitsBuffered != 0 {
		t.Errorf("drained network not clean: %+v", rep)
	}
}

// TestFaultKillAllShortcutsConvergesToBaseline drives identical traffic
// through a shortcut design that loses every band mid-run and through a
// pure mesh, and checks the post-fault steady-state latencies agree: a
// fully degraded overlay IS the baseline.
func TestFaultKillAllShortcutsConvergesToBaseline(t *testing.T) {
	m := topology.New(8, 8)
	edges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{Budget: 6})

	type event struct {
		cycle    int64
		src, dst int
	}
	rng := rand.New(rand.NewSource(11))
	var schedule []event
	for c := int64(0); c < 9000; c++ {
		if rng.Float64() < 0.4 {
			src, dst := rng.Intn(m.N()), rng.Intn(m.N())
			if src != dst {
				schedule = append(schedule, event{cycle: c, src: src, dst: dst})
			}
		}
	}

	const killAt, measureFrom = 2000, 4000
	run := func(shortcuts []shortcut.Edge, kill bool) float64 {
		n := New(Config{Mesh: m, Width: tech.Width16B, Shortcuts: shortcuts})
		var sum, count int64
		rec := &deliveryTap{from: measureFrom, sum: &sum, count: &count}
		n.AttachObserver(rec)
		i := 0
		for c := int64(0); c < 9000; c++ {
			if kill && c == killAt {
				for _, e := range shortcuts {
					if err := n.KillShortcut(e.From); err != nil {
						t.Fatalf("kill %v: %v", e, err)
					}
				}
			}
			for i < len(schedule) && schedule[i].cycle == c {
				n.Inject(Message{Src: schedule[i].src, Dst: schedule[i].dst, Class: Data, Inject: c})
				i++
			}
			n.Step()
		}
		if !n.Drain(500000) {
			t.Fatal("run failed to drain")
		}
		if count == 0 {
			t.Fatal("no packets measured")
		}
		return float64(sum) / float64(count)
	}

	degraded := run(edges, true)
	baseline := run(nil, false)
	if diff := (degraded - baseline) / baseline; diff > 0.05 || diff < -0.05 {
		t.Errorf("post-fault latency %.2f vs baseline %.2f (%.1f%% apart), want convergence",
			degraded, baseline, diff*100)
	}
}

// deliveryTap averages latency over packets injected at or after `from`.
type deliveryTap struct {
	BaseObserver
	from       int64
	sum, count *int64
}

func (d *deliveryTap) PacketDelivered(msg Message, at int64, _ int) {
	if msg.Inject >= d.from {
		*d.sum += at - msg.Inject
		*d.count++
	}
}

// TestFaultMulticastBandFailover kills the RF multicast band mid-stream
// and checks every multicast — queued, in flight, and future — is still
// delivered to every destination via unicast expansion.
func TestFaultMulticastBandFailover(t *testing.T) {
	m := topology.New10x10()
	cfg := Config{
		Mesh: m, Width: tech.Width16B,
		Multicast: MulticastRF,
		RFEnabled: m.RFPlacement(50),
	}
	n := New(cfg)
	src := m.Caches()[3]
	dbv := uint64(0)
	for ci := 0; ci < 64; ci += 5 {
		dbv |= 1 << uint(ci)
	}
	perMsg := DBVCount(dbv)

	const msgs = 12
	sent := 0
	for c := int64(0); c < 600; c++ {
		if c%50 == 0 && sent < msgs {
			n.Inject(Message{Src: src, Class: Invalidate, Multicast: true, DBV: dbv, Inject: c})
			sent++
		}
		if c == 120 {
			if err := n.KillMulticastBand(); err != nil {
				t.Fatalf("kill band: %v", err)
			}
			if n.MulticastBandAlive() {
				t.Fatal("band still alive after kill")
			}
			if err := n.KillMulticastBand(); err == nil {
				t.Error("double band kill not rejected")
			}
		}
		n.Step()
	}
	if !n.Drain(100000) {
		t.Fatal("failed to drain after band failover")
	}
	s := n.Stats()
	if want := int64(msgs * perMsg); s.MulticastDeliveries != want {
		t.Errorf("multicast deliveries = %d, want %d", s.MulticastDeliveries, want)
	}
	if s.MulticastMessages != msgs {
		t.Errorf("multicast messages = %d, want %d", s.MulticastMessages, msgs)
	}
	if rep := n.Audit(); rep.ConservationError() != 0 {
		t.Errorf("conservation broken: %+v", rep)
	}
}

// TestFaultReconfigureValidation checks that Reconfigure validates the
// whole edge list up front — reporting every violation, including failed
// RF endpoints — and leaves the previous plan running on rejection.
func TestFaultReconfigureValidation(t *testing.T) {
	m := topology.New(6, 6)
	sc := shortcut.Edge{From: 1, To: 30}
	n := New(Config{
		Mesh: m, Width: tech.Width16B,
		Shortcuts: []shortcut.Edge{sc, {From: 4, To: 20}},
	})
	if err := n.KillShortcut(1); err != nil {
		t.Fatalf("kill: %v", err)
	}

	bad := []shortcut.Edge{
		{From: -1, To: 5},  // unknown source index
		{From: 2, To: 99},  // unknown destination index
		{From: 3, To: 3},   // self-loop
		{From: 6, To: 7},   // fine, but From reused below
		{From: 6, To: 8},   // duplicate outbound at 6
		{From: 1, To: 9},   // failed transmitter (router 1)
		{From: 10, To: 30}, // failed receiver (router 30)
	}
	err := n.Reconfigure(bad)
	if err == nil {
		t.Fatal("invalid edge list accepted")
	}
	for _, want := range []string{
		"unknown router index -1",
		"unknown router index 99",
		"self-loop",
		"two outbound shortcuts",
		"transmitter has failed",
		"receiver has failed",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
	// The surviving band of the old plan must still be routable.
	if got := n.Config().Shortcuts; len(got) != 2 {
		t.Fatalf("rejected reconfigure mutated the plan: %v", got)
	}
	n.Inject(Message{Src: 4, Dst: 20, Class: Data, Inject: n.Now()})
	if !n.Drain(10000) {
		t.Fatal("network broken after rejected reconfigure")
	}

	// A valid replan around the failed endpoints installs and fires
	// Replanned.
	rep := &replanTap{}
	n.AttachObserver(rep)
	good := []shortcut.Edge{{From: 2, To: 33}, {From: 4, To: 20}}
	if err := n.Reconfigure(good); err != nil {
		t.Fatalf("valid reconfigure rejected: %v", err)
	}
	if rep.calls != 1 || rep.edges != len(good) {
		t.Errorf("Replanned fired %d times with %d edges, want 1 with %d",
			rep.calls, rep.edges, len(good))
	}
	n.Inject(Message{Src: 2, Dst: 33, Class: Data, Inject: n.Now()})
	if !n.Drain(10000) {
		t.Fatal("network broken after valid reconfigure")
	}
}

type replanTap struct {
	BaseObserver
	calls, edges int
}

func (r *replanTap) Replanned(edges int, _ int64) {
	r.calls++
	r.edges = edges
}

// TestFaultBackoffSchedule pins the exponential-backoff curve.
func TestFaultBackoffSchedule(t *testing.T) {
	fs := &faultState{cfg: FaultConfig{}.withDefaults()}
	want := []int64{4, 8, 16, 32, 64, 128, 256, 256, 256}
	for i, w := range want {
		if got := fs.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}
