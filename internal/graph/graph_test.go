package graph

import (
	"testing"
	"testing/quick"
)

func TestGridStructure(t *testing.T) {
	g := Grid(10, 10)
	if g.N() != 100 {
		t.Fatalf("N = %d, want 100", g.N())
	}
	// A 10x10 grid has 2*(9*10+9*10) = 360 directed edges.
	if got := len(g.Edges()); got != 360 {
		t.Errorf("edges = %d, want 360", got)
	}
	// Corner has 2 out-edges, edge vertex 3, interior 4.
	if got := len(g.OutEdges(0)); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if got := len(g.OutEdges(5)); got != 3 {
		t.Errorf("edge degree = %d, want 3", got)
	}
	if got := len(g.OutEdges(55)); got != 4 {
		t.Errorf("interior degree = %d, want 4", got)
	}
}

func TestGridShortestPathsAreManhattan(t *testing.T) {
	g := Grid(10, 10)
	apsp := g.AllPairs()
	for y1 := 0; y1 < 10; y1++ {
		for x1 := 0; x1 < 10; x1++ {
			for y2 := 0; y2 < 10; y2++ {
				for x2 := 0; x2 < 10; x2++ {
					u, v := y1*10+x1, y2*10+x2
					want := abs(x1-x2) + abs(y1-y2)
					if apsp[u][v] != want {
						t.Fatalf("dist(%d,%d) = %d, want %d", u, v, apsp[u][v], want)
					}
				}
			}
		}
	}
}

func TestDiameterOfGrid(t *testing.T) {
	g := Grid(10, 10)
	d, _, _ := g.Diameter()
	if d != 18 {
		t.Errorf("diameter = %d, want 18", d)
	}
}

func TestShortcutReducesCost(t *testing.T) {
	g := Grid(10, 10)
	before := g.TotalPairCost()
	// Add a cross-chip shortcut corner-to-corner.
	g.AddEdge(0, 99, 1)
	after := g.TotalPairCost()
	if after >= before {
		t.Errorf("shortcut did not reduce total cost: %d -> %d", before, after)
	}
	// Distance 0->99 should now be 1.
	if d := g.ShortestFrom(0)[99]; d != 1 {
		t.Errorf("dist(0,99) = %d, want 1", d)
	}
}

func TestNextHopsConsistentWithDistances(t *testing.T) {
	g := Grid(6, 6)
	g.AddEdge(0, 35, 1) // shortcut
	for dst := 0; dst < g.N(); dst++ {
		next := g.NextHops(dst)
		dist := g.reverse().ShortestFrom(dst)
		for v := 0; v < g.N(); v++ {
			if v == dst {
				if next[v] != -1 {
					t.Fatalf("next[dst] = %d, want -1", next[v])
				}
				continue
			}
			n := next[v]
			if n == -1 {
				t.Fatalf("vertex %d has no next hop to %d", v, dst)
			}
			if dist[n] != dist[v]-edgeWeight(g, v, n) {
				t.Fatalf("next hop %d->%d not on shortest path to %d", v, n, dst)
			}
		}
	}
}

func edgeWeight(g *Digraph, from, to int) int {
	for _, e := range g.OutEdges(from) {
		if e.To == to {
			return e.Weight
		}
	}
	return -1
}

func TestPathToEndpointsAndLength(t *testing.T) {
	g := Grid(10, 10)
	p := g.PathTo(0, 99)
	if p[0] != 0 || p[len(p)-1] != 99 {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	if len(p)-1 != 18 {
		t.Errorf("path length = %d hops, want 18", len(p)-1)
	}
	if got := g.PathTo(7, 7); len(got) != 1 || got[0] != 7 {
		t.Errorf("self path = %v", got)
	}
}

func TestPathFollowsEdges(t *testing.T) {
	g := Grid(8, 8)
	g.AddEdge(3, 60, 1)
	p := g.PathTo(3, 63)
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path step %d->%d is not an edge", p[i], p[i+1])
		}
	}
	// Path should use the shortcut: 3 -> 60 -> ... cheaper than manhattan.
	if len(p)-1 >= 10 {
		t.Errorf("path did not exploit shortcut, %d hops", len(p)-1)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Grid(3, 3)
	if !g.HasEdge(0, 1) {
		t.Fatal("expected edge 0->1")
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned false")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge survived removal")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("second removal should report false")
	}
	// Reverse direction untouched.
	if !g.HasEdge(1, 0) {
		t.Fatal("reverse edge should remain")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Grid(3, 3)
	c := g.Clone()
	c.AddEdge(0, 8, 1)
	if g.HasEdge(0, 8) {
		t.Fatal("mutating clone affected original")
	}
	if !c.HasEdge(0, 8) {
		t.Fatal("clone lost its own edge")
	}
}

func TestWeightedCost(t *testing.T) {
	g := Grid(4, 4)
	apsp := g.AllPairs()
	freq := make([][]int64, 16)
	freq[0] = make([]int64, 16)
	freq[0][15] = 10 // 10 messages over distance 6
	freq[5] = make([]int64, 16)
	freq[5][6] = 3 // 3 messages over distance 1
	if got := WeightedCost(apsp, freq); got != 63 {
		t.Errorf("weighted cost = %d, want 63", got)
	}
}

func TestTotalCostSymmetricGrid(t *testing.T) {
	g := Grid(2, 2)
	// 2x2 grid pair distances: 4 pairs at distance 1 each way (8 ordered)
	// and 2 diagonal pairs at distance 2 each way (4 ordered) = 8+8 = 16.
	if got := g.TotalPairCost(); got != 16 {
		t.Errorf("total cost = %d, want 16", got)
	}
}

func TestAddEdgePanicsOnBadInput(t *testing.T) {
	g := New(4)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 4, 1) },
		func() { g.AddEdge(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: adding any edge never increases any pairwise distance, and
// total cost is monotonically non-increasing.
func TestPropertyAddingEdgesNeverHurts(t *testing.T) {
	f := func(a, b uint8) bool {
		g := Grid(5, 5)
		u, v := int(a)%25, int(b)%25
		if u == v {
			return true
		}
		before := g.AllPairs()
		g.AddEdge(u, v, 1)
		after := g.AllPairs()
		for x := 0; x < 25; x++ {
			for y := 0; y < 25; y++ {
				if after[x][y] > before[x][y] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: shortest-path distances satisfy the triangle inequality.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(a, b, c uint8) bool {
		g := Grid(5, 5)
		g.AddEdge(2, 22, 1)
		g.AddEdge(20, 4, 1)
		apsp := g.AllPairs()
		x, y, z := int(a)%25, int(b)%25, int(c)%25
		return apsp[x][z] <= apsp[x][y]+apsp[y][z]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a path returned by PathTo always has length equal to the
// shortest-path distance.
func TestPropertyPathLengthMatchesDistance(t *testing.T) {
	f := func(a, b uint8) bool {
		g := Grid(6, 6)
		g.AddEdge(1, 34, 1)
		u, v := int(a)%36, int(b)%36
		p := g.PathTo(u, v)
		d := g.ShortestFrom(u)[v]
		return len(p)-1 == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
