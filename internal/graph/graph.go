// Package graph provides the small directed-graph library used for
// shortcut selection and routing-table construction: grid graphs,
// all-pairs shortest paths, diameters, and next-hop extraction.
//
// Vertices are dense integers [0, N). Edges carry an integer weight
// (hop cost); the mesh uses weight 1 everywhere and RF-I shortcuts are
// weight-1 edges too (single-cycle cross-chip traversal), so shortest
// paths are measured in router hops exactly as the paper's cost metric
// W(x,y) prescribes.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Infinity marks an unreachable distance in APSP results.
const Infinity = math.MaxInt32

// Edge is a directed, weighted edge.
type Edge struct {
	From, To int
	Weight   int
}

// Digraph is a mutable directed graph over dense integer vertices.
type Digraph struct {
	n   int
	adj [][]Edge
}

// New returns an empty digraph with n vertices.
func New(n int) *Digraph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Digraph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// AddEdge inserts a directed edge. Duplicate edges are allowed; shortest
// paths will use the cheapest. Panics on out-of-range vertices or
// non-positive weight (zero-weight edges would allow free cycles).
func (g *Digraph) AddEdge(from, to, weight int) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if weight <= 0 {
		panic("graph: edge weight must be positive")
	}
	g.adj[from] = append(g.adj[from], Edge{From: from, To: to, Weight: weight})
}

// RemoveEdge deletes all edges from->to. It reports whether any edge was
// removed.
func (g *Digraph) RemoveEdge(from, to int) bool {
	if from < 0 || from >= g.n {
		return false
	}
	kept := g.adj[from][:0]
	removed := false
	for _, e := range g.adj[from] {
		if e.To == to {
			removed = true
			continue
		}
		kept = append(kept, e)
	}
	g.adj[from] = kept
	return removed
}

// HasEdge reports whether at least one from->to edge exists.
func (g *Digraph) HasEdge(from, to int) bool {
	if from < 0 || from >= g.n {
		return false
	}
	for _, e := range g.adj[from] {
		if e.To == to {
			return true
		}
	}
	return false
}

// OutEdges returns the edges leaving v. The slice is owned by the graph
// and must not be modified.
func (g *Digraph) OutEdges(v int) []Edge { return g.adj[v] }

// Edges returns a copy of all edges in the graph.
func (g *Digraph) Edges() []Edge {
	var out []Edge
	for _, es := range g.adj {
		out = append(out, es...)
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	for v, es := range g.adj {
		c.adj[v] = append([]Edge(nil), es...)
	}
	return c
}

// ShortestFrom computes single-source shortest path distances from src
// using Dijkstra's algorithm (weights are positive by construction).
// dist[v] == Infinity for unreachable v.
func (g *Digraph) ShortestFrom(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	pq := &vertexHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(vertexItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range g.adj[it.v] {
			if nd := it.d + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, vertexItem{v: e.To, d: nd})
			}
		}
	}
	return dist
}

// shortestFromInto is ShortestFrom reusing caller-provided scratch to avoid
// allocation in the O(V) APSP loop.
func (g *Digraph) shortestFromInto(src int, dist []int, pq *vertexHeap) {
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	*pq = (*pq)[:0]
	heap.Push(pq, vertexItem{v: src, d: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(vertexItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range g.adj[it.v] {
			if nd := it.d + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, vertexItem{v: e.To, d: nd})
			}
		}
	}
}

// AllPairs computes the all-pairs shortest-path distance matrix.
// Result[u][v] is the distance from u to v (Infinity if unreachable).
func (g *Digraph) AllPairs() [][]int {
	out := make([][]int, g.n)
	pq := &vertexHeap{}
	for u := 0; u < g.n; u++ {
		out[u] = make([]int, g.n)
		g.shortestFromInto(u, out[u], pq)
	}
	return out
}

// TotalPairCost sums the shortest-path distance over all ordered vertex
// pairs (u != v). This is the paper's architecture-specific objective
// sum over all (x,y) of W(x,y). It returns Infinity-scaled overflow-safe
// values only for connected graphs; unreachable pairs panic, because the
// selection algorithms are only defined on connected meshes.
func (g *Digraph) TotalPairCost() int64 {
	apsp := g.AllPairs()
	return TotalCost(apsp)
}

// TotalCost sums a distance matrix over all ordered pairs, panicking on
// unreachable pairs.
func TotalCost(apsp [][]int) int64 {
	var total int64
	for u := range apsp {
		for v, d := range apsp[u] {
			if u == v {
				continue
			}
			if d >= Infinity {
				panic(fmt.Sprintf("graph: vertex %d cannot reach %d", u, v))
			}
			total += int64(d)
		}
	}
	return total
}

// WeightedCost sums freq[u][v] * dist[u][v] over all ordered pairs. It is
// the application-specific objective sum of F(x,y)*W(x,y). freq may be
// sparse (nil rows are treated as all-zero).
func WeightedCost(apsp [][]int, freq [][]int64) int64 {
	var total int64
	for u := range apsp {
		if u >= len(freq) || freq[u] == nil {
			continue
		}
		row := freq[u]
		for v, f := range row {
			if f == 0 || u == v {
				continue
			}
			d := apsp[u][v]
			if d >= Infinity {
				panic(fmt.Sprintf("graph: vertex %d cannot reach %d", u, v))
			}
			total += f * int64(d)
		}
	}
	return total
}

// Diameter returns the maximum finite shortest-path distance over all
// ordered pairs, and one pair realizing it.
func (g *Digraph) Diameter() (d int, from, to int) {
	apsp := g.AllPairs()
	for u := range apsp {
		for v, dd := range apsp[u] {
			if u == v || dd >= Infinity {
				continue
			}
			if dd > d {
				d, from, to = dd, u, v
			}
		}
	}
	return d, from, to
}

// NextHops computes, for every source vertex, the next vertex on a
// shortest path toward dst. Ties are broken deterministically by
// preferring the edge listed first in adjacency order (callers control
// adjacency insertion order; the topology package inserts mesh edges
// before shortcut edges so mesh paths win ties, reducing RF contention).
// next[v] == -1 when v == dst or dst is unreachable from v.
func (g *Digraph) NextHops(dst int) []int {
	// Reverse-Dijkstra from dst over the transposed graph gives
	// dist-to-dst for every vertex in one pass.
	distTo := g.reverse().ShortestFrom(dst)
	next := make([]int, g.n)
	for v := range next {
		next[v] = -1
		if v == dst || distTo[v] >= Infinity {
			continue
		}
		for _, e := range g.adj[v] {
			if distTo[e.To] < Infinity && e.Weight+distTo[e.To] == distTo[v] {
				next[v] = e.To
				break
			}
		}
		if next[v] == -1 {
			panic(fmt.Sprintf("graph: no consistent next hop from %d to %d", v, dst))
		}
	}
	return next
}

// PathTo extracts one shortest path from src to dst as a vertex sequence
// including both endpoints, using the same deterministic tie-break as
// NextHops. Returns nil if dst is unreachable.
func (g *Digraph) PathTo(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	next := g.NextHops(dst)
	if next[src] == -1 {
		return nil
	}
	path := []int{src}
	for v := src; v != dst; {
		v = next[v]
		path = append(path, v)
		if len(path) > g.n {
			panic("graph: next-hop cycle")
		}
	}
	return path
}

// reverse returns the transposed graph.
func (g *Digraph) reverse() *Digraph {
	r := New(g.n)
	for _, es := range g.adj {
		for _, e := range es {
			r.adj[e.To] = append(r.adj[e.To], Edge{From: e.To, To: e.From, Weight: e.Weight})
		}
	}
	return r
}

// vertexItem/vertexHeap implement the Dijkstra priority queue.
type vertexItem struct {
	v, d int
}

type vertexHeap []vertexItem

func (h vertexHeap) Len() int            { return len(h) }
func (h vertexHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(vertexItem)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Grid builds a 2D mesh digraph of w x h vertices with bidirectional
// unit-weight edges between 4-neighbors. Vertex id = y*w + x.
func Grid(w, h int) *Digraph {
	g := New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y), 1)
				g.AddEdge(id(x+1, y), id(x, y), 1)
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1), 1)
				g.AddEdge(id(x, y+1), id(x, y), 1)
			}
		}
	}
	return g
}
