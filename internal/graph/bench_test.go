package graph

import "testing"

func BenchmarkAllPairs10x10(b *testing.B) {
	g := Grid(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if apsp := g.AllPairs(); apsp[0][99] != 18 {
			b.Fatal("wrong distance")
		}
	}
}

func BenchmarkAllPairs16x16(b *testing.B) {
	g := Grid(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if apsp := g.AllPairs(); apsp[0][255] != 30 {
			b.Fatal("wrong distance")
		}
	}
}

func BenchmarkNextHops(b *testing.B) {
	g := Grid(10, 10)
	g.AddEdge(3, 88, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next := g.NextHops(88); next[3] != 88 {
			b.Fatal("shortcut not used")
		}
	}
}

func BenchmarkTotalPairCost(b *testing.B) {
	g := Grid(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.TotalPairCost() != 66000 {
			b.Fatal("wrong cost")
		}
	}
}
