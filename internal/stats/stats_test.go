package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMeanRatios([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", got)
	}
	if got := GeoMeanRatios([]float64{1, 1, 1}); got != 1 {
		t.Errorf("geomean of ones = %v", got)
	}
	if GeoMeanRatios(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive ratio")
		}
	}()
	GeoMeanRatios([]float64{1, 0})
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalize = %v", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero base")
		}
	}()
	Normalize([]float64{1}, 0)
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1.0")
	tab.AddRow("b", "22.5", "dropped-extra-cell")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, sep, 2 rows)", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "alpha") {
		t.Errorf("table content wrong:\n%s", out)
	}
	if strings.Contains(out, "dropped") {
		t.Error("extra cell should be dropped")
	}
	// Columns align: all lines equal length.
	for _, l := range lines[1:] {
		if len(l) > len(lines[0])+2 {
			t.Errorf("misaligned line %q", l)
		}
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]string{"a", "bb"}, []int64{10, 5}, 20)
	if !strings.Contains(out, "####################") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "##########") {
		t.Errorf("half bar missing:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched lengths")
		}
	}()
	Histogram([]string{"a"}, []int64{1, 2}, 10)
}

func TestHistogramAllZeros(t *testing.T) {
	out := Histogram([]string{"x"}, []int64{0}, 10)
	if !strings.Contains(out, "0") {
		t.Errorf("zero histogram should still render: %q", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.679); got != "-32.1%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1.24); got != "+24.0%" {
		t.Errorf("Pct = %q", got)
	}
}

// Property: geometric mean of ratios lies between min and max.
func TestPropertyGeoMeanBounds(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a)/32 + 0.1, float64(b)/32 + 0.1, float64(c)/32 + 0.1}
		g := GeoMeanRatios(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
