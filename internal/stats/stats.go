// Package stats provides the small numeric and rendering helpers the
// experiment harness uses: means, normalization against a baseline, and
// fixed-width text tables/histograms for terminal output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMeanRatios returns the geometric mean of xs, the right average for
// normalized ratios. Panics on non-positive entries.
func GeoMeanRatios(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: non-positive ratio")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Normalize divides each value by base. Panics when base is zero.
func Normalize(vals []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: zero baseline")
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v / base
	}
	return out
}

// Table renders a fixed-width text table with a header row.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Histogram renders counts as a labeled ASCII bar chart, scaled to
// maxWidth characters.
func Histogram(labels []string, counts []int64, maxWidth int) string {
	if len(labels) != len(counts) {
		panic("stats: labels/counts length mismatch")
	}
	var max int64 = 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	var b strings.Builder
	for i, c := range counts {
		n := int(c * int64(maxWidth) / max)
		fmt.Fprintf(&b, "%-*s |%s %d\n", lw, labels[i], strings.Repeat("#", n), c)
	}
	return b.String()
}

// Pct formats a ratio as a signed percentage delta versus 1.0
// ("-32.1%" for 0.679).
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}
