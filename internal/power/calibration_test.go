package power

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestPowerSplitUnderDefaultLoad pins the calibration story: at the
// default injection rate on the 16B baseline, dynamic power (router +
// link switching) is ~40% of the total with area-proportional leakage
// the rest. The measured Figure 8 savings (-57% at 8B, -73% at 4B,
// matching the paper's -48%/-72%) emerge under approximately this
// split, so a regression here would silently skew every power figure.
func TestPowerSplitUnderDefaultLoad(t *testing.T) {
	m := topology.New10x10()
	n := noc.New(noc.Config{Mesh: m, Width: tech.Width16B})
	gen := traffic.NewProbabilistic(m, traffic.Uniform, 0, 1)
	for now := int64(0); now < 20000; now++ {
		gen.Tick(now, n.Inject)
		n.Step()
	}
	if !n.Drain(200000) {
		t.Fatal("no drain")
	}
	b := Compute(n.Config(), n.Stats())
	dynamic := b.RouterDynamic + b.LinkDynamic
	frac := dynamic / b.Total()
	if frac < 0.3 || frac > 0.6 {
		t.Errorf("dynamic fraction = %.2f, want [0.3, 0.6] (breakdown %+v)", frac, b)
	}
	// Total should sit in the single-digit-watt range the literature
	// reports for NoCs of this scale.
	if b.Total() < 3 || b.Total() > 12 {
		t.Errorf("total power = %.2f W, want 3..12", b.Total())
	}
	// Router energy dominates link energy on this floorplan (Table 2's
	// area ratios carry over to switching energy).
	if b.RouterDynamic <= b.LinkDynamic {
		t.Errorf("router dynamic (%.2f) should exceed link dynamic (%.2f)",
			b.RouterDynamic, b.LinkDynamic)
	}
}

// TestPowerReductionShapeAt8B checks the Figure 8 mechanism end to end:
// halving the link width under identical traffic should cut total power
// roughly in half (the paper reports 48%, we land in the 50-60% band).
func TestPowerReductionShapeAt8B(t *testing.T) {
	m := topology.New10x10()
	run := func(w tech.LinkWidth) float64 {
		n := noc.New(noc.Config{Mesh: m, Width: w})
		gen := traffic.NewProbabilistic(m, traffic.Uniform, 0, 1)
		for now := int64(0); now < 15000; now++ {
			gen.Tick(now, n.Inject)
			n.Step()
		}
		if !n.Drain(200000) {
			t.Fatal("no drain")
		}
		return Compute(n.Config(), n.Stats()).Total()
	}
	p16, p8 := run(tech.Width16B), run(tech.Width8B)
	saving := 1 - p8/p16
	if saving < 0.40 || saving < 0 || saving > 0.70 {
		t.Errorf("8B power saving = %.2f, want the paper's regime [0.40, 0.70]", saving)
	}
}
