package power

import (
	"math"
	"testing"

	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// staticEdges returns a 16-shortcut set resembling the paper's
// architecture-specific selection (32 distinct endpoint routers).
func staticEdges(m *topology.Mesh) []shortcut.Edge {
	return shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
	})
}

func TestAreaMatchesTable2(t *testing.T) {
	m := topology.New10x10()
	cases := []struct {
		name              string
		cfg               noc.Config
		router, link, rfi float64
		total             float64
	}{
		{"baseline-16B", noc.Config{Mesh: m, Width: tech.Width16B}, 30.21, 0.08, 0, 30.29},
		{"baseline-8B", noc.Config{Mesh: m, Width: tech.Width8B}, 9.34, 0.04, 0, 9.38},
		{"baseline-4B", noc.Config{Mesh: m, Width: tech.Width4B}, 3.23, 0.02, 0, 3.25},
		{"arch-16B", noc.Config{Mesh: m, Width: tech.Width16B, Shortcuts: staticEdges(m)}, 32.06, 0.08, 0.51, 32.65},
		{"50ap-16B", noc.Config{Mesh: m, Width: tech.Width16B, RFEnabled: m.RFPlacement(50)}, 35.99, 0.08, 1.59, 37.66},
		{"arch-8B", noc.Config{Mesh: m, Width: tech.Width8B, Shortcuts: staticEdges(m)}, 9.86, 0.04, 0.51, 10.41},
		{"50ap-8B", noc.Config{Mesh: m, Width: tech.Width8B, RFEnabled: m.RFPlacement(50)}, 10.97, 0.04, 1.59, 12.60},
		{"arch-4B", noc.Config{Mesh: m, Width: tech.Width4B, Shortcuts: staticEdges(m)}, 3.39, 0.02, 0.51, 3.92},
		{"50ap-4B", noc.Config{Mesh: m, Width: tech.Width4B, RFEnabled: m.RFPlacement(50)}, 3.73, 0.02, 1.59, 5.34},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Defaults must be applied the same way noc.New does.
			n := noc.New(c.cfg)
			a := ComputeArea(n.Config())
			if !approx(a.Router, c.router, 0.02) {
				t.Errorf("router area = %.3f, want %.2f", a.Router, c.router)
			}
			if !approx(a.Link, c.link, 0.005) {
				t.Errorf("link area = %.4f, want %.2f", a.Link, c.link)
			}
			if !approx(a.RFI, c.rfi, 0.01) {
				t.Errorf("RF-I area = %.3f, want %.2f", a.RFI, c.rfi)
			}
			if !approx(a.Total(), c.total, 0.04) {
				t.Errorf("total area = %.3f, want %.2f", a.Total(), c.total)
			}
		})
	}
}

func TestAreaSavingsHeadline(t *testing.T) {
	// The paper's headline: 50 APs on a 4B mesh save 82.3% of silicon
	// versus the 16B baseline.
	m := topology.New10x10()
	base := ComputeArea(noc.New(noc.Config{Mesh: m, Width: tech.Width16B}).Config())
	adaptive := ComputeArea(noc.New(noc.Config{
		Mesh: m, Width: tech.Width4B, RFEnabled: m.RFPlacement(50),
	}).Config())
	saving := 1 - adaptive.Total()/base.Total()
	if !approx(saving, 0.823, 0.01) {
		t.Errorf("area saving = %.3f, want ~0.823", saving)
	}
}

func TestPowerScalesWithActivity(t *testing.T) {
	m := topology.New10x10()
	cfg := noc.New(noc.Config{Mesh: m, Width: tech.Width16B}).Config()
	idle := noc.Stats{Cycles: 1000}
	busy := noc.Stats{
		Cycles: 1000, RouterTraversals: 50000, MeshFlitHops: 40000, LocalFlitHops: 10000,
	}
	pi, pb := Compute(cfg, idle), Compute(cfg, busy)
	if pi.RouterDynamic != 0 || pi.LinkDynamic != 0 {
		t.Error("idle network should burn no dynamic power")
	}
	if pi.RouterLeakage <= 0 {
		t.Error("leakage must be positive")
	}
	if pb.Total() <= pi.Total() {
		t.Error("busy network must burn more than idle")
	}
	// Leakage is activity-independent.
	if pb.RouterLeakage != pi.RouterLeakage {
		t.Error("leakage should not depend on activity")
	}
}

func TestNarrowerMeshLeaksLess(t *testing.T) {
	m := topology.New10x10()
	leak := func(w tech.LinkWidth) float64 {
		cfg := noc.New(noc.Config{Mesh: m, Width: w}).Config()
		b := Compute(cfg, noc.Stats{Cycles: 1000})
		return b.RouterLeakage + b.LinkLeakage
	}
	l16, l8, l4 := leak(tech.Width16B), leak(tech.Width8B), leak(tech.Width4B)
	if !(l4 < l8 && l8 < l16) {
		t.Errorf("leakage not monotonic: %g %g %g", l4, l8, l16)
	}
	// Area-proportionality: 4B leaks roughly area(4)/area(16) of 16B.
	if r := l4 / l16; r > 0.15 {
		t.Errorf("4B/16B leakage ratio = %.3f, want < 0.15", r)
	}
}

func TestRFOverheadOrdering(t *testing.T) {
	// Static (32 endpoints) < adaptive-25 (50) < adaptive-50 (100) in
	// RF static power and area overhead.
	m := topology.New10x10()
	rf := func(cfg noc.Config) (float64, float64) {
		c := noc.New(cfg).Config()
		b := Compute(c, noc.Stats{Cycles: 1000})
		return b.RFStatic, ComputeArea(c).RFI
	}
	sStatic, aStatic := rf(noc.Config{Mesh: m, Width: tech.Width16B, Shortcuts: staticEdges(m)})
	s25, a25 := rf(noc.Config{Mesh: m, Width: tech.Width16B, RFEnabled: m.RFPlacement(25)})
	s50, a50 := rf(noc.Config{Mesh: m, Width: tech.Width16B, RFEnabled: m.RFPlacement(50)})
	if !(sStatic < s25 && s25 < s50) {
		t.Errorf("RF static power ordering wrong: %g %g %g", sStatic, s25, s50)
	}
	if !(aStatic < a25 && a25 < a50) {
		t.Errorf("RF area ordering wrong: %g %g %g", aStatic, a25, a50)
	}
}

func TestVCTAreaCost(t *testing.T) {
	m := topology.New10x10()
	cfg := noc.New(noc.Config{Mesh: m, Width: tech.Width16B, Multicast: noc.MulticastVCT}).Config()
	a := ComputeArea(cfg)
	base := ComputeArea(noc.New(noc.Config{Mesh: m, Width: tech.Width16B}).Config())
	frac := a.VCT / base.Total()
	if !approx(frac, 0.054, 0.001) {
		t.Errorf("VCT table area fraction = %.4f, want 0.054", frac)
	}
	b := Compute(cfg, noc.Stats{Cycles: 100})
	if b.VCTTable <= 0 {
		t.Error("VCT tables must burn power")
	}
}

func TestMulticastGatingSavesRxEnergy(t *testing.T) {
	m := topology.New10x10()
	cfg := noc.New(noc.Config{
		Mesh: m, Width: tech.Width16B,
		Multicast: noc.MulticastRF, RFEnabled: m.RFPlacement(50),
	}).Config()
	gated := noc.Stats{Cycles: 1000, RFMulticastBits: 10000, RFMulticastRxBits: 20000}
	ungated := noc.Stats{Cycles: 1000, RFMulticastBits: 10000, RFMulticastRxBits: 400000}
	pg, pu := Compute(cfg, gated), Compute(cfg, ungated)
	if pg.RFDynamic >= pu.RFDynamic {
		t.Error("power gating must reduce RF receive energy")
	}
}

func TestZeroCycleStats(t *testing.T) {
	m := topology.New10x10()
	cfg := noc.New(noc.Config{Mesh: m, Width: tech.Width16B}).Config()
	if got := Compute(cfg, noc.Stats{}); got.Total() != 0 {
		t.Errorf("zero-cycle run should report zero power, got %v", got.Total())
	}
}

func TestWireShortcutAreaAndLeakage(t *testing.T) {
	m := topology.New10x10()
	edges := staticEdges(m)
	wire := noc.New(noc.Config{Mesh: m, Width: tech.Width16B, Shortcuts: edges, WireShortcuts: true}).Config()
	rfc := noc.New(noc.Config{Mesh: m, Width: tech.Width16B, Shortcuts: edges}).Config()
	aw, ar := ComputeArea(wire), ComputeArea(rfc)
	if aw.RFI != 0 {
		t.Error("wire shortcuts must not have RF area")
	}
	if aw.Link <= ar.Link {
		t.Error("wire shortcuts must add link (repeater) area")
	}
	bw := Compute(wire, noc.Stats{Cycles: 100})
	br := Compute(rfc, noc.Stats{Cycles: 100})
	if bw.RFStatic != 0 {
		t.Error("wire shortcuts must not pay RF standing power")
	}
	if br.RFStatic <= 0 {
		t.Error("RF shortcuts must pay standing power")
	}
	if bw.LinkLeakage <= br.LinkLeakage {
		t.Error("wire shortcuts must add link leakage")
	}
}
