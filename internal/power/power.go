// Package power converts raw network activity (noc.Stats) and a design
// point (noc.Config) into the paper's power and area numbers:
//
//   - routers via an Orion-style model (per-flit buffer/crossbar/arbiter
//     energy plus area-proportional leakage), calibrated so the analytic
//     areas reproduce the paper's Table 2 exactly at 16/8/4 B;
//   - links via the CosiNoC/IPEM methodology of Figure 6(b):
//     E_link = 0.25*VDD^2*(k_opt*(c0+cp)/h_opt + c_wire) per bit per mm
//     with delay-optimal repeater sizing/spacing, and repeater
//     leakage/area per the same figure's lower equations;
//   - RF-I at the projected 0.75 pJ/bit and 124 um^2/Gbps, plus a
//     standing per-endpoint power for carrier/mixer bias, which is the
//     adaptive architecture's flexibility overhead;
//   - the VCT baseline's tree tables at the paper's reported 5.4% of
//     baseline NoC silicon area.
//
// Power is reported the way the paper reports it: average instantaneous
// watts over the simulated execution.
package power

import (
	"repro/internal/noc"
	"repro/internal/tech"
)

// Breakdown is average power in watts by component.
type Breakdown struct {
	RouterDynamic float64
	RouterLeakage float64
	LinkDynamic   float64
	LinkLeakage   float64
	RFDynamic     float64
	RFStatic      float64
	VCTTable      float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.RouterDynamic + b.RouterLeakage + b.LinkDynamic + b.LinkLeakage +
		b.RFDynamic + b.RFStatic + b.VCTTable
}

// Area is silicon (active-layer) area in mm^2 by component, the paper's
// Table 2 decomposition.
type Area struct {
	Router float64
	Link   float64
	RFI    float64
	VCT    float64
}

// Total sums all components.
func (a Area) Total() float64 { return a.Router + a.Link + a.RFI + a.VCT }

// linkEnergyPerBitMM is E_link of Figure 6(b) in joules per bit per mm.
func linkEnergyPerBitMM() float64 {
	kopt := tech.OptimalRepeaterSize()
	hopt := tech.OptimalRepeaterSpacing()
	return 0.25 * tech.VDD * tech.VDD * (kopt*(tech.C0+tech.Cp)/hopt + tech.CWire)
}

// linkLeakagePerBitMM is repeater leakage power per bit per mm of link:
// (1/h_opt) repeaters per mm, each of width k_opt*w_min, leaking
// I_off per um of width at VDD.
func linkLeakagePerBitMM() float64 {
	kopt := tech.OptimalRepeaterSize()
	hopt := tech.OptimalRepeaterSpacing()
	return (1.0 / hopt) * kopt * tech.WMin * tech.IOff * tech.VDD
}

// repeaterCellHeightUM calibrates repeater layout area so the 16 B
// baseline's total link area is the paper's 0.08 mm^2 (Table 2); it is a
// plain cell-height in um multiplying the k_opt*w_min device width.
const repeaterCellHeightUM = 1.636

// linkAreaPerBitMM is repeater silicon area per bit per mm of link, mm^2.
func linkAreaPerBitMM() float64 {
	kopt := tech.OptimalRepeaterSize()
	hopt := tech.OptimalRepeaterSpacing()
	// k_opt*w_min um wide by cell height um, every h_opt mm; um^2 -> mm^2.
	return (1.0 / hopt) * kopt * tech.WMin * repeaterCellHeightUM * 1e-6
}

// meshLinkCount returns the number of unidirectional inter-router links.
func meshLinkCount(cfg noc.Config) int {
	m := cfg.Mesh
	return 2 * ((m.W-1)*m.H + (m.H-1)*m.W)
}

// localLinkMM is the NI-to-router link length in mm (a half router
// spacing).
const localLinkMM = 1.0

// vctTableAreaFraction is the silicon cost of VCT's tree tables: the
// paper reports 5.4% of the baseline mesh area.
const vctTableAreaFraction = 0.054

// ComputeArea returns the Table 2 area decomposition of a design.
func ComputeArea(cfg noc.Config) Area {
	var a Area
	m := cfg.Mesh
	for id := 0; id < m.N(); id++ {
		a.Router += tech.RouterArea(cfg.Width, cfg.RFPortsAt(id))
	}
	bits := float64(cfg.Width.Bits())
	a.Link = float64(meshLinkCount(cfg)) * bits * tech.RouterSpacingMM * linkAreaPerBitMM()
	if cfg.WireShortcuts {
		for _, e := range cfg.Shortcuts {
			dist := float64(m.Manhattan(e.From, e.To)) * tech.RouterSpacingMM
			a.Link += bits * dist * linkAreaPerBitMM()
		}
	}
	a.RFI = float64(cfg.RFEndpointCount()) *
		tech.RFIEndpointArea(tech.ShortcutBandwidthGbps(tech.ShortcutWidthBytes))
	if cfg.Multicast == noc.MulticastVCT {
		base := cfg
		base.Shortcuts = nil
		base.RFEnabled = nil
		base.Multicast = noc.MulticastExpand
		a.VCT = vctTableAreaFraction * ComputeArea(base).Total()
	}
	return a
}

// Compute returns the average-power breakdown of a simulation run.
func Compute(cfg noc.Config, s noc.Stats) Breakdown {
	var b Breakdown
	if s.Cycles == 0 {
		return b
	}
	seconds := float64(s.Cycles) * tech.NetworkCyclePeriod
	bits := float64(cfg.Width.Bits())

	// Router dynamic: one buffer-write+read, crossbar and arbitration per
	// flit per traversed router.
	b.RouterDynamic = float64(s.RouterTraversals) *
		tech.RouterDynamicEnergyPerFlit(cfg.Width) / seconds

	// Router leakage: area-proportional, constant over the run.
	for id := 0; id < cfg.Mesh.N(); id++ {
		b.RouterLeakage += tech.RouterLeakagePower(cfg.Width, cfg.RFPortsAt(id))
	}

	// Link dynamic energy: inter-router hops at the router spacing,
	// NI links at half that, wire shortcuts at their full span.
	ebm := linkEnergyPerBitMM()
	flitMM := float64(s.MeshFlitHops)*tech.RouterSpacingMM +
		float64(s.LocalFlitHops)*localLinkMM +
		s.WireShortcutFlitMM
	b.LinkDynamic = flitMM * bits * ebm / seconds

	// Link leakage.
	lbm := linkLeakagePerBitMM()
	linkMM := float64(meshLinkCount(cfg)) * tech.RouterSpacingMM
	for _, e := range cfg.Shortcuts {
		if cfg.WireShortcuts {
			linkMM += float64(cfg.Mesh.Manhattan(e.From, e.To)) * tech.RouterSpacingMM
		}
	}
	b.LinkLeakage = linkMM * bits * lbm

	// RF-I: 0.75 pJ per bit covers one transmitter/receiver pair; the
	// multicast band charges the Tx half once and the Rx half per
	// non-gated receiver.
	b.RFDynamic = (float64(s.RFShortcutBits)*tech.RFIEnergyPerBit +
		float64(s.RFMulticastBits)*tech.RFIEnergyPerBit/2 +
		float64(s.RFMulticastRxBits)*tech.RFIEnergyPerBit/2) / seconds
	b.RFStatic = float64(cfg.RFEndpointCount()) * tech.RFIStaticPerEndpoint

	// VCT tree tables: leakage on their silicon plus a small per-lookup
	// energy folded into the same term.
	if cfg.Multicast == noc.MulticastVCT {
		b.VCTTable = ComputeArea(cfg).VCT * 0.12 // same W/mm^2 as routers
	}
	return b
}
