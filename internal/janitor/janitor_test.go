package janitor

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeFS is an in-memory FS with injectable failures.
type fakeFS struct {
	mu sync.Mutex
	// files maps base name -> (size, mtime).
	files map[string]fakeFile

	readDirErr error
	removeErr  map[string]error // base name -> error
	infoErr    map[string]bool  // base name -> Info() fails
	removed    []string
}

type fakeFile struct {
	size  int64
	mtime time.Time
}

func newFakeFS() *fakeFS {
	return &fakeFS{
		files:     map[string]fakeFile{},
		removeErr: map[string]error{},
		infoErr:   map[string]bool{},
	}
}

func (f *fakeFS) add(name string, size int64, mtime time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[name] = fakeFile{size: size, mtime: mtime}
}

func (f *fakeFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.readDirErr != nil {
		return nil, f.readDirErr
	}
	names := make([]string, 0, len(f.files))
	for n := range f.files {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, 0, len(names))
	for _, n := range names {
		out = append(out, &fakeEntry{fs: f, name: n})
	}
	return out, nil
}

func (f *fakeFS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name := filepath.Base(path)
	if err := f.removeErr[name]; err != nil {
		return err
	}
	if _, ok := f.files[name]; !ok {
		return fs.ErrNotExist
	}
	delete(f.files, name)
	f.removed = append(f.removed, name)
	return nil
}

func (f *fakeFS) names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var names []string
	for n := range f.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type fakeEntry struct {
	fs   *fakeFS
	name string
}

func (e *fakeEntry) Name() string      { return e.name }
func (e *fakeEntry) IsDir() bool       { return false }
func (e *fakeEntry) Type() fs.FileMode { return 0 }
func (e *fakeEntry) Info() (fs.FileInfo, error) {
	e.fs.mu.Lock()
	defer e.fs.mu.Unlock()
	if e.fs.infoErr[e.name] {
		return nil, errors.New("injected stat failure")
	}
	f, ok := e.fs.files[e.name]
	if !ok {
		return nil, fs.ErrNotExist
	}
	return &fakeInfo{name: e.name, file: f}, nil
}

type fakeInfo struct {
	name string
	file fakeFile
}

func (i *fakeInfo) Name() string       { return i.name }
func (i *fakeInfo) Size() int64        { return i.file.size }
func (i *fakeInfo) Mode() fs.FileMode  { return 0o644 }
func (i *fakeInfo) ModTime() time.Time { return i.file.mtime }
func (i *fakeInfo) IsDir() bool        { return false }
func (i *fakeInfo) Sys() interface{}   { return nil }

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newTestJanitor(t *testing.T, ffs *fakeFS, cfg Config) *Janitor {
	t.Helper()
	cfg.Dir = "artifacts"
	cfg.FS = ffs
	if cfg.Now == nil {
		cfg.Now = func() time.Time { return t0 }
	}
	j, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return j
}

// TestSweepByteQuotaLRU: past the byte quota, the oldest files go
// first, and deletion stops as soon as the directory fits.
func TestSweepByteQuotaLRU(t *testing.T) {
	ffs := newFakeFS()
	ffs.add("a.ckpt", 100, t0.Add(-4*time.Hour)) // oldest
	ffs.add("b.ckpt", 100, t0.Add(-3*time.Hour))
	ffs.add("c.crash.json", 100, t0.Add(-2*time.Hour))
	ffs.add("d.ckpt", 100, t0.Add(-1*time.Hour)) // newest

	j := newTestJanitor(t, ffs, Config{MaxBytes: 250})
	rep := j.Sweep()

	if rep.Deleted != 2 || rep.FreedBytes != 200 {
		t.Errorf("deleted %d files / %d bytes, want 2 / 200", rep.Deleted, rep.FreedBytes)
	}
	if rep.LiveBytes != 200 {
		t.Errorf("live bytes %d, want 200", rep.LiveBytes)
	}
	want := []string{"c.crash.json", "d.ckpt"}
	if got := ffs.names(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("survivors %v, want %v (LRU order violated)", got, want)
	}
}

// TestSweepAgeQuota: files past MaxAge are deleted even when the byte
// quota is satisfied.
func TestSweepAgeQuota(t *testing.T) {
	ffs := newFakeFS()
	ffs.add("old.ckpt", 10, t0.Add(-48*time.Hour))
	ffs.add("fresh.ckpt", 10, t0.Add(-time.Minute))

	j := newTestJanitor(t, ffs, Config{MaxAge: 24 * time.Hour})
	rep := j.Sweep()
	if rep.Deleted != 1 {
		t.Fatalf("deleted %d, want 1", rep.Deleted)
	}
	if got := ffs.names(); len(got) != 1 || got[0] != "fresh.ckpt" {
		t.Errorf("survivors %v, want [fresh.ckpt]", got)
	}
}

// TestSweepPinnedNeverDeleted: a pinned file survives both quotas, and
// the report counts the spare exactly once even when both the age pass
// and the byte pass would have deleted it.
func TestSweepPinnedNeverDeleted(t *testing.T) {
	ffs := newFakeFS()
	ffs.add("pinned.ckpt", 100, t0.Add(-48*time.Hour)) // oldest AND over-age
	ffs.add("loose.ckpt", 100, t0.Add(-1*time.Hour))

	j := newTestJanitor(t, ffs, Config{
		MaxBytes: 50, // both files are over quota
		MaxAge:   24 * time.Hour,
		Pinned:   func(name string) bool { return name == "pinned.ckpt" },
	})
	rep := j.Sweep()
	if got := ffs.names(); len(got) != 1 || got[0] != "pinned.ckpt" {
		t.Fatalf("survivors %v, want [pinned.ckpt]", got)
	}
	if rep.Pinned != 1 {
		t.Errorf("Pinned = %d, want 1 (one spared file, even though both quotas hit it)", rep.Pinned)
	}
	if rep.LiveBytes != 100 {
		t.Errorf("live bytes %d, want 100 (pinned file still on disk)", rep.LiveBytes)
	}
}

// TestSweepForeignFilesUntouched: files outside the managed suffixes
// are invisible to every quota.
func TestSweepForeignFilesUntouched(t *testing.T) {
	ffs := newFakeFS()
	ffs.add("precious.txt", 1<<20, t0.Add(-999*time.Hour))
	ffs.add("a.ckpt", 10, t0.Add(-1*time.Hour))

	j := newTestJanitor(t, ffs, Config{MaxBytes: 5, MaxAge: time.Hour})
	rep := j.Sweep()
	if rep.Scanned != 1 {
		t.Errorf("scanned %d files, want 1 (foreign file must not be managed)", rep.Scanned)
	}
	got := ffs.names()
	found := false
	for _, n := range got {
		if n == "precious.txt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("foreign file deleted; survivors %v", got)
	}
}

// TestSweepRemoveErrorCounted: a failing Remove is counted, the file's
// bytes stay live, and the sweep still deletes what it can.
func TestSweepRemoveErrorCounted(t *testing.T) {
	ffs := newFakeFS()
	ffs.add("stuck.ckpt", 100, t0.Add(-3*time.Hour))
	ffs.add("ok.ckpt", 100, t0.Add(-2*time.Hour))
	ffs.removeErr["stuck.ckpt"] = errors.New("injected EIO")

	j := newTestJanitor(t, ffs, Config{MaxBytes: 50})
	rep := j.Sweep()
	if rep.Errors != 1 {
		t.Errorf("errors %d, want 1", rep.Errors)
	}
	if rep.Deleted != 1 {
		t.Errorf("deleted %d, want 1 (the healthy file)", rep.Deleted)
	}
	if rep.LiveBytes != 100 {
		t.Errorf("live bytes %d, want 100 (failed delete still occupies disk)", rep.LiveBytes)
	}
}

// TestSweepReadDirError: a failing directory listing is one counted
// error and an otherwise empty report — never a panic or a wild delete.
func TestSweepReadDirError(t *testing.T) {
	ffs := newFakeFS()
	ffs.readDirErr = errors.New("injected ENOSPC-adjacent failure")
	j := newTestJanitor(t, ffs, Config{MaxBytes: 1})
	rep := j.Sweep()
	if rep.Errors != 1 || rep.Deleted != 0 || rep.Scanned != 0 {
		t.Errorf("report %+v, want exactly one error and nothing else", rep)
	}
	if s := j.Stats(); s.Errors != 1 || s.Sweeps != 1 {
		t.Errorf("stats %+v, want errors=1 sweeps=1", s)
	}
}

// TestSweepInfoErrorSkipsFile: a file whose Stat fails is skipped (and
// counted), not treated as zero-sized.
func TestSweepInfoErrorSkipsFile(t *testing.T) {
	ffs := newFakeFS()
	ffs.add("ghost.ckpt", 100, t0.Add(-3*time.Hour))
	ffs.add("ok.ckpt", 100, t0.Add(-2*time.Hour))
	ffs.infoErr["ghost.ckpt"] = true

	j := newTestJanitor(t, ffs, Config{MaxBytes: 1000})
	rep := j.Sweep()
	if rep.Errors != 1 || rep.Scanned != 1 {
		t.Errorf("report %+v, want errors=1 scanned=1", rep)
	}
}

// TestStatsAccumulate: counters add up across sweeps.
func TestStatsAccumulate(t *testing.T) {
	ffs := newFakeFS()
	ffs.add("a.ckpt", 100, t0.Add(-2*time.Hour))
	ffs.add("b.ckpt", 100, t0.Add(-1*time.Hour))
	j := newTestJanitor(t, ffs, Config{MaxBytes: 100})
	j.Sweep()
	ffs.add("c.ckpt", 100, t0.Add(-time.Minute))
	j.Sweep()
	s := j.Stats()
	if s.Sweeps != 2 || s.Deleted != 2 || s.FreedBytes != 200 {
		t.Errorf("stats %+v, want sweeps=2 deleted=2 freed=200", s)
	}
	if s.LastLiveBytes != 100 {
		t.Errorf("last live bytes %d, want 100", s.LastLiveBytes)
	}
}

// TestJanitorRealFS: end-to-end against a real temp directory, through
// Run with a cancelled context (one immediate sweep, then exit).
func TestJanitorRealFS(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.ckpt")
	if err := os.WriteFile(old, make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(old, past, past); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fresh.ckpt"), make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.me"), make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := New(Config{Dir: dir, MaxAge: 24 * time.Hour, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j.Run(ctx) // immediate sweep, then returns on the dead context

	if _, err := os.Stat(old); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("over-age file still present: %v", err)
	}
	for _, name := range []string{"fresh.ckpt", "keep.me"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s unexpectedly deleted: %v", name, err)
		}
	}
	if s := j.Stats(); s.Deleted != 1 {
		t.Errorf("deleted %d, want 1", s.Deleted)
	}
}

// TestNewRequiresDir: the one construction error.
func TestNewRequiresDir(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Dir succeeded")
	}
}

// TestSweepRunsCompactHook: the Compact hook fires once per sweep, even
// an empty or failed one — journal compaction must not depend on the
// directory having deletable artifacts.
func TestSweepRunsCompactHook(t *testing.T) {
	ffs := newFakeFS()
	ffs.add("a.ckpt", 100, t0.Add(-time.Hour))
	calls := 0
	j := newTestJanitor(t, ffs, Config{MaxBytes: 1000, Compact: func() { calls++ }})
	j.Sweep()
	j.Sweep()
	if calls != 2 {
		t.Fatalf("Compact ran %d times over 2 sweeps, want 2", calls)
	}
	ffs.readDirErr = errors.New("disk gone")
	j.Sweep()
	if calls != 3 {
		t.Fatalf("Compact ran %d times over 3 sweeps (one failed), want 3", calls)
	}
}
