// Package janitor enforces disk quotas over the sweep service's
// artifact directories. Checkpoints (<id>.ckpt) and crash dumps
// (<id>.crash.json) are keyed by content fingerprint, so they
// accumulate without bound as distinct specs flow through the service;
// the janitor reclaims them under two quotas — a maximum age and a
// maximum total byte footprint — deleting least-recently-written files
// first (LRU by mtime) and never touching a file whose fingerprint is
// pinned (in flight).
//
// The filesystem is an injectable seam (FS), so quota logic, disk-full
// behaviour and partial-failure paths (a Remove that errors, a ReadDir
// that fails mid-sweep) are all unit-testable without touching a real
// disk.
package janitor

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FS is the filesystem seam the janitor operates through. The real
// implementation is OSFS; tests inject fakes that fail on demand.
type FS interface {
	// ReadDir lists a directory, like os.ReadDir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Remove deletes one file, like os.Remove.
	Remove(path string) error
}

type osFS struct{}

func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
func (osFS) Remove(path string) error                  { return os.Remove(path) }

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

// Config tunes one janitor.
type Config struct {
	// Dir is the directory to garbage-collect. Required.
	Dir string

	// MaxBytes bounds the total size of managed files; past it the
	// oldest unpinned files are deleted until the directory fits.
	// Zero disables the byte quota.
	MaxBytes int64

	// MaxAge deletes managed files older than this, regardless of the
	// byte quota. Zero disables the age quota.
	MaxAge time.Duration

	// Interval is the cadence of Run's periodic sweeps (default 30s).
	Interval time.Duration

	// Pinned, when non-nil, reports whether a file (by base name) must
	// be kept: the service pins every in-flight point's checkpoint and
	// crash dump so the janitor never deletes state a running
	// simulation is about to save or resume from.
	Pinned func(name string) bool

	// Match, when non-nil, selects which files the janitor manages.
	// The default matches "*.ckpt" and "*.crash.json" and nothing
	// else, so foreign files in the directory are never deleted.
	Match func(name string) bool

	// FS is the filesystem seam (default OSFS()).
	FS FS

	// Now is the clock (default time.Now); injectable for age tests.
	Now func() time.Time

	// Compact, when non-nil, runs at the end of every sweep: the hook
	// the sweep service uses to fold the job journal's settled records
	// away under the same cadence that bounds the artifact directory.
	// It must be safe for concurrent use with the service's own writes.
	Compact func()
}

// DefaultMatch is the default file filter: the three artifact kinds the
// sweep service writes. Per-job result logs (*.results) are managed
// like checkpoints — the service pins live and recently-read jobs
// through the Pinned callback.
func DefaultMatch(name string) bool {
	return strings.HasSuffix(name, ".ckpt") || strings.HasSuffix(name, ".crash.json") ||
		strings.HasSuffix(name, ".results")
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Match == nil {
		c.Match = DefaultMatch
	}
	if c.FS == nil {
		c.FS = OSFS()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Report describes one sweep.
type Report struct {
	// Scanned counts managed files seen; ScannedBytes their total size.
	Scanned      int   `json:"scanned"`
	ScannedBytes int64 `json:"scanned_bytes"`
	// Deleted counts files removed; FreedBytes their total size.
	Deleted    int   `json:"deleted"`
	FreedBytes int64 `json:"freed_bytes"`
	// Pinned counts files spared by the pin callback that a quota
	// would otherwise have deleted.
	Pinned int `json:"pinned"`
	// Errors counts failed filesystem operations (the sweep carries on
	// past them; the affected bytes stay in LiveBytes).
	Errors int `json:"errors"`
	// LiveBytes is the managed footprint left after the sweep.
	LiveBytes int64 `json:"live_bytes"`
}

// Stats accumulates across sweeps.
type Stats struct {
	Sweeps        int64 `json:"sweeps"`
	Deleted       int64 `json:"deleted"`
	FreedBytes    int64 `json:"freed_bytes"`
	Errors        int64 `json:"errors"`
	LastLiveBytes int64 `json:"last_live_bytes"`
}

// Janitor garbage-collects one directory under Config's quotas. Safe
// for concurrent use. Use New.
type Janitor struct {
	cfg Config

	mu    sync.Mutex
	stats Stats
}

// New builds a janitor.
func New(cfg Config) (*Janitor, error) {
	if cfg.Dir == "" {
		return nil, errors.New("janitor: Dir is required")
	}
	return &Janitor{cfg: cfg.withDefaults()}, nil
}

// Stats snapshots the accumulated counters.
func (j *Janitor) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Run sweeps every Interval until ctx is cancelled. One sweep runs
// immediately, so a restarted server reclaims a bloated directory
// before serving.
func (j *Janitor) Run(ctx context.Context) {
	j.Sweep()
	t := time.NewTicker(j.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			j.Sweep()
		}
	}
}

// managedFile is one file the janitor may delete.
type managedFile struct {
	name  string
	size  int64
	mtime time.Time
}

// Sweep performs one garbage-collection pass: first the age quota,
// then — on whatever survives — the byte quota, oldest first. Pinned
// files are never deleted; filesystem errors are counted and skipped,
// never fatal (a janitor that dies on the first bad file stops
// protecting the disk exactly when the disk is misbehaving).
func (j *Janitor) Sweep() Report {
	if j.cfg.Compact != nil {
		defer j.cfg.Compact()
	}
	var rep Report
	now := j.cfg.Now()

	entries, err := j.cfg.FS.ReadDir(j.cfg.Dir)
	if err != nil {
		rep.Errors++
		j.account(rep)
		return rep
	}

	var files []managedFile
	for _, e := range entries {
		if e.IsDir() || !j.cfg.Match(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			rep.Errors++
			continue
		}
		files = append(files, managedFile{name: e.Name(), size: info.Size(), mtime: info.ModTime()})
		rep.Scanned++
		rep.ScannedBytes += info.Size()
	}

	pinned := func(name string) bool {
		return j.cfg.Pinned != nil && j.cfg.Pinned(name)
	}
	// A file both over the age quota and inside the byte-quota overshoot
	// is spared by both passes but is one spared file: count it once.
	pinCounted := map[string]bool{}
	countPin := func(name string) {
		if !pinCounted[name] {
			pinCounted[name] = true
			rep.Pinned++
		}
	}
	remove := func(f managedFile) bool {
		if err := j.cfg.FS.Remove(filepath.Join(j.cfg.Dir, f.name)); err != nil {
			rep.Errors++
			return false
		}
		rep.Deleted++
		rep.FreedBytes += f.size
		return true
	}

	// Oldest first: both quotas reclaim in LRU-by-mtime order.
	sort.Slice(files, func(a, b int) bool {
		if !files[a].mtime.Equal(files[b].mtime) {
			return files[a].mtime.Before(files[b].mtime)
		}
		return files[a].name < files[b].name
	})

	live := rep.ScannedBytes
	var survivors []managedFile
	for _, f := range files {
		if j.cfg.MaxAge > 0 && now.Sub(f.mtime) > j.cfg.MaxAge {
			if pinned(f.name) {
				countPin(f.name)
				survivors = append(survivors, f)
				continue
			}
			if remove(f) {
				live -= f.size
			}
			continue
		}
		survivors = append(survivors, f)
	}
	if j.cfg.MaxBytes > 0 {
		for _, f := range survivors {
			if live <= j.cfg.MaxBytes {
				break
			}
			if pinned(f.name) {
				countPin(f.name)
				continue
			}
			if remove(f) {
				live -= f.size
			}
		}
	}
	rep.LiveBytes = live
	j.account(rep)
	return rep
}

func (j *Janitor) account(rep Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stats.Sweeps++
	j.stats.Deleted += int64(rep.Deleted)
	j.stats.FreedBytes += rep.FreedBytes
	j.stats.Errors += int64(rep.Errors)
	j.stats.LastLiveBytes = rep.LiveBytes
}
