package experiments

// Point-level content addressing and canonical result serialization for
// the sweep service's memoization cache (internal/sweepcache). The
// contract, property-tested in memo_test.go: two points with equal
// fingerprints produce bit-identical canonical Result bytes, and any
// semantic difference — in the design, the workload, or the run
// parameters — changes the fingerprint.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/noc"
)

// PointFingerprint is the content address of one sweep point: the design
// fingerprint (noc.Config.Fingerprint, which already excludes execution
// parallelism) combined with the workload identity and every run
// parameter that shapes the Result.
//
// Deliberately excluded, so runs that differ only in how they execute
// share a cache entry: StepWorkers (bit-identical at any worker count),
// Check (the invariant checker observes, it never changes results),
// ProfileCycles (adaptive profiling is already baked into the built
// config's shortcut set), and all checkpoint/retry/timeout machinery.
//
// workload must fully name the traffic: generators encode their pattern
// and parameters in Name() (e.g. "2Hotspot", "x264", "uniform+mc35"),
// and the rate/seed knobs come from opts.
func PointFingerprint(cfg noc.Config, workload string, opts Options) string {
	opts = opts.WithDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "point|cfg=%s|workload=%s|rate=%g|mcrate=%g|seed=%d|cycles=%d|drain=%d|hist=%t",
		cfg.Fingerprint(), workload, opts.Rate, opts.MulticastRate,
		opts.Seed, opts.Cycles, opts.DrainCycles, opts.Histograms)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// MarshalResult renders a Result in canonical form: Go's JSON encoding
// of an all-exported, map-free struct tree is byte-deterministic (field
// order is declaration order, float64 uses shortest round-trip
// rendering), so equal Results always serialize to equal bytes — the
// bit-identity the cache-correctness property test pins.
func MarshalResult(r Result) ([]byte, error) {
	return json.Marshal(r)
}

// UnmarshalResult parses canonical Result bytes.
func UnmarshalResult(blob []byte) (Result, error) {
	var r Result
	if err := json.Unmarshal(blob, &r); err != nil {
		return Result{}, fmt.Errorf("experiments: corrupt cached result: %w", err)
	}
	return r, nil
}
