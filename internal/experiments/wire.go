package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"

	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Wire layer of the worker-process protocol: a sweep point that can be
// described entirely by serializable data (a GenSpec instead of a
// generator closure) can be shipped to an out-of-process worker. The
// frames themselves are built on internal/checkpoint's frame format;
// payloads are JSON because they cross a version boundary only with
// ourselves (parent and child are the same binary) and debuggability on
// a crashed pipe beats compactness.

// Frame kinds on the worker pipe. The parent sends jobs and cancels on
// the child's stdin; the child sends heartbeats and outcomes on stdout.
const (
	FrameJob       byte = 1 // parent -> child: one workerJob (JSON)
	FrameCancel    byte = 2 // parent -> child: cancel the running job
	FrameHeartbeat byte = 3 // child -> parent: liveness while running
	FrameOutcome   byte = 4 // child -> parent: one workerOutcome (JSON)
)

// GenSpec is a serializable description of a traffic generator: the
// data NewSweepPoint's closure captures, flattened so it survives a
// process boundary.
type GenSpec struct {
	// Workload names a probabilistic pattern or an application trace
	// (LookupWorkload resolves it).
	Workload string `json:"workload"`

	// Rate and Seed parameterize the base generator. They are the
	// post-default values (Options.WithDefaults applied), so a child
	// process reconstructs the exact generator the parent fingerprinted.
	Rate float64 `json:"rate"`
	Seed int64   `json:"seed"`

	// Multicast, when set, wraps the base generator in a multicast
	// augmentation with the given rate and locality.
	Multicast         bool    `json:"multicast,omitempty"`
	MulticastRate     float64 `json:"multicast_rate,omitempty"`
	MulticastLocality int     `json:"multicast_locality,omitempty"`
}

// Build constructs a fresh generator for the spec on the given mesh.
func (g GenSpec) Build(m *topology.Mesh) (traffic.Generator, error) {
	mk, err := LookupWorkload(m, g.Workload)
	if err != nil {
		return nil, err
	}
	gen := mk(g.Rate, g.Seed)
	if g.Multicast {
		gen = traffic.NewMulticastAugment(m, gen, g.MulticastRate, g.MulticastLocality, g.Seed)
	}
	return gen, nil
}

// LookupWorkload resolves a workload name (case-insensitive) to a
// generator constructor: probabilistic patterns first, then application
// traces. This is the canonical name registry; the sweep service
// validates request workloads against it.
func LookupWorkload(m *topology.Mesh, name string) (func(rate float64, seed int64) traffic.Generator, error) {
	for _, p := range traffic.Patterns() {
		if strings.EqualFold(p.String(), name) {
			p := p
			return func(rate float64, seed int64) traffic.Generator {
				return traffic.NewProbabilistic(m, p, rate, seed)
			}, nil
		}
	}
	for _, a := range traffic.Apps() {
		if strings.EqualFold(a.String(), name) {
			a := a
			return func(rate float64, seed int64) traffic.Generator {
				return traffic.NewAppTrace(m, a, rate, seed)
			}, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// PointPayload is the complete portable description of a sweep point:
// everything a worker process needs to run it. Config.Mesh is carried
// as dimensions (the mesh's derived structure is deterministic in W×H).
type PointPayload struct {
	MeshW  int        `json:"mesh_w"`
	MeshH  int        `json:"mesh_h"`
	Config noc.Config `json:"config"` // Mesh pointer nil'd on the wire
	Gen    GenSpec    `json:"gen"`
	Opts   Options    `json:"opts"`
}

// Executor dispatches one sweep-point attempt somewhere other than the
// calling goroutine — in practice, to a worker process pool. Execute
// must honor ctx (cancelling the remote attempt so it checkpoints) and
// returns *WorkerCrash when the attempt died instead of answering.
type Executor interface {
	Execute(ctx context.Context, payload *PointPayload, fingerprint string, spec CheckpointSpec) (Result, error)
}

// NewPortableSweepPoint is NewSweepPoint for points that must be able to
// cross a process boundary: the generator is described by a GenSpec
// instead of a factory closure. When the supervising CheckpointSpec
// carries an Executor, Run dispatches to it; otherwise it runs
// in-process, byte-identically to NewSweepPoint.
func NewPortableSweepPoint(cfg noc.Config, gen GenSpec, opts Options, meta map[string]string) (SweepPoint, error) {
	probe, err := gen.Build(cfg.Mesh)
	if err != nil {
		return SweepPoint{}, err
	}
	fp := PointFingerprint(cfg, probe.Name(), opts)
	payload := &PointPayload{
		MeshW:  cfg.Mesh.W,
		MeshH:  cfg.Mesh.H,
		Config: cfg,
		Gen:    gen,
		Opts:   opts,
	}
	payload.Config.Mesh = nil // reattached from MeshW×MeshH on arrival
	return SweepPoint{
		ID:          fp,
		Fingerprint: fp,
		Meta:        meta,
		Cost:        opts.EstimatedCycles(),
		Payload:     payload,
		Run: func(ctx context.Context, spec CheckpointSpec) (Result, error) {
			if spec.Exec != nil {
				return spec.Exec.Execute(ctx, payload, fp, spec)
			}
			g, err := gen.Build(cfg.Mesh)
			if err != nil {
				return Result{}, err
			}
			return RunCheckpointed(ctx, cfg, g, opts, spec)
		},
	}, nil
}

// workerJob is the FrameJob payload.
type workerJob struct {
	Fingerprint string       `json:"fingerprint"`
	Point       PointPayload `json:"point"`

	// Checkpoint wiring, mirroring CheckpointSpec (Extra and OnNetwork
	// cannot cross the process boundary and portable points use neither).
	CkptPath  string `json:"ckpt_path,omitempty"`
	CkptEvery int64  `json:"ckpt_every,omitempty"`
	Resume    bool   `json:"resume,omitempty"`

	// MemLimit is the child's soft Go memory limit in bytes
	// (debug.SetMemoryLimit); the child self-terminates with an OOM
	// outcome once its live heap exceeds it. Zero leaves the limit alone.
	MemLimit int64 `json:"mem_limit,omitempty"`

	// HeartbeatMS is the child's heartbeat period while running.
	HeartbeatMS int64 `json:"heartbeat_ms"`

	// Chaos injects a worker-hostile fault ("panic", "alloc", "hang")
	// instead of running the point. Only the chaos harness sets it.
	Chaos string `json:"chaos,omitempty"`
}

// workerOutcome is the FrameOutcome payload.
type workerOutcome struct {
	// Result is MarshalResult's canonical encoding ("" when the attempt
	// produced no result at all). Cancelled attempts carry the partial,
	// Interrupted result alongside Canceled.
	Result json.RawMessage `json:"result,omitempty"`

	Err      string `json:"err,omitempty"`      // "" on success
	Canceled bool   `json:"canceled,omitempty"` // Err is the cancel, not a failure
	Resume   bool   `json:"resume,omitempty"`   // Err wraps ErrResume

	// OOM marks a memory-limit self-termination; the child exits right
	// after sending this frame. Evidence carries its final runtime state.
	OOM      bool             `json:"oom,omitempty"`
	Evidence *RuntimeEvidence `json:"evidence,omitempty"`
}

// RuntimeEvidence is the runtime state captured at failure time and
// attached to crash dumps, so an OOM kill is distinguishable from a
// panic when quarantine serves the dump as 422 evidence.
type RuntimeEvidence struct {
	GoMemLimit int64  `json:"gomemlimit,omitempty"` // bytes; 0 when unlimited
	HeapAlloc  uint64 `json:"heap_alloc,omitempty"`
	HeapSys    uint64 `json:"heap_sys,omitempty"`
	TotalAlloc uint64 `json:"total_alloc,omitempty"`
	NumGC      uint32 `json:"num_gc,omitempty"`

	// Filled by the supervisor for worker deaths.
	Worker     bool   `json:"worker,omitempty"`
	ExitCode   int    `json:"exit_code,omitempty"`
	Signal     string `json:"signal,omitempty"`
	StderrTail string `json:"stderr_tail,omitempty"`
}

// captureEvidence snapshots the current process's runtime state.
func captureEvidence() *RuntimeEvidence {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ev := &RuntimeEvidence{
		HeapAlloc:  ms.HeapAlloc,
		HeapSys:    ms.HeapSys,
		TotalAlloc: ms.TotalAlloc,
		NumGC:      ms.NumGC,
	}
	// SetMemoryLimit with a negative argument reports the current limit
	// without changing it; math.MaxInt64 means "no limit set".
	if lim := debug.SetMemoryLimit(-1); lim != math.MaxInt64 {
		ev.GoMemLimit = lim
	}
	return ev
}

// WorkerCrash reports a worker process that died — or was killed by its
// supervisor — instead of returning an outcome for the dispatched
// point. The supervisor converts it into the same crash-dump +
// failed-PointOutcome path an in-process panic takes.
type WorkerCrash struct {
	Reason     string // "exited unexpectedly", "heartbeat lost", "deadline exceeded", "memory limit exceeded"
	OOM        bool
	ExitCode   int    // -1 when unknown
	Signal     string // terminating signal name, "" if none
	StderrTail string // last stderr bytes from the worker
	Evidence   *RuntimeEvidence
}

// Error implements error.
func (e *WorkerCrash) Error() string {
	s := "experiments: worker " + e.Reason
	if e.Signal != "" {
		s += " (signal: " + e.Signal + ")"
	} else if e.ExitCode >= 0 {
		s += fmt.Sprintf(" (exit status %d)", e.ExitCode)
	}
	return s
}
