package experiments

import (
	"strings"
	"testing"
)

func TestScalingStudyShape(t *testing.T) {
	rows := ScalingStudy([]int{8, 12}, Options{Cycles: 6000, ProfileCycles: 6000})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	small, big := rows[0], rows[1]
	if small.Cores != 36 || big.Cores != 100 {
		t.Errorf("core counts = %d, %d", small.Cores, big.Cores)
	}
	// Mean hop distance grows with mesh size.
	if big.MeanHops <= small.MeanHops {
		t.Errorf("mean hops should grow: %.2f -> %.2f", small.MeanHops, big.MeanHops)
	}
	for _, r := range rows {
		// The adaptive overlay always improves on the 4B baseline and
		// keeps most of the power saving.
		if r.Adaptive4BLatency >= r.Baseline4BLatency {
			t.Errorf("%dx%d: adaptive (%.3f) should beat 4B baseline (%.3f)",
				r.Side, r.Side, r.Adaptive4BLatency, r.Baseline4BLatency)
		}
		if r.Adaptive4BPower > 0.6 {
			t.Errorf("%dx%d: adaptive power ratio %.3f too high", r.Side, r.Side, r.Adaptive4BPower)
		}
		if r.Adaptive4BArea > 0.25 {
			t.Errorf("%dx%d: adaptive area ratio %.3f too high", r.Side, r.Side, r.Adaptive4BArea)
		}
	}
	out := RenderScaling(rows)
	if !strings.Contains(out, "8x8") || !strings.Contains(out, "12x12") {
		t.Error("render missing rows")
	}
}
