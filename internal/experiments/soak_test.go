package experiments

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Healthy random specs must validate, run, drain and close the
// exactly-once ledger.
func TestSoakRandomSpecsHealthy(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 4; seed++ {
		spec := RandomSoakSpec(seed)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		res, err := RunSoakSpec(context.Background(), spec, CheckpointSpec{})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if err := CheckSoak(res); err != nil {
			t.Fatalf("seed %d: unhealthy: %v", seed, err)
		}
		if res.Stats.PacketsInjected == 0 {
			t.Fatalf("seed %d: no traffic injected", seed)
		}
	}
}

// Spec generation must be a pure function of the seed.
func TestSoakRandomSpecDeterministic(t *testing.T) {
	t.Parallel()
	a, b := RandomSoakSpec(99), RandomSoakSpec(99)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different specs:\n%+v\n%+v", a, b)
	}
	if reflect.DeepEqual(RandomSoakSpec(99), RandomSoakSpec(100)) {
		t.Fatal("different seeds produced identical specs")
	}
}

func TestSoakSpecValidate(t *testing.T) {
	t.Parallel()
	good := RandomSoakSpec(3)
	cases := []struct {
		name string
		mut  func(*SoakSpec)
	}{
		{"odd mesh", func(s *SoakSpec) { s.MeshW = 7 }},
		{"tiny mesh", func(s *SoakSpec) { s.MeshW, s.MeshH = 4, 4 }},
		{"bad width", func(s *SoakSpec) { s.WidthBytes = 5 }},
		{"bad pattern", func(s *SoakSpec) { s.Pattern = "nope" }},
		{"zero rate", func(s *SoakSpec) { s.Rate = 0 }},
		{"rate > 1", func(s *SoakSpec) { s.Rate = 1.5 }},
		{"zero cycles", func(s *SoakSpec) { s.Cycles = 0 }},
		{"bad fault rate", func(s *SoakSpec) { s.Fault.MisrouteRate = 2 }},
		{"misdeliver sans integrity", func(s *SoakSpec) {
			s.Integrity = false
			s.Fault.MisdeliverRate = 0.001
		}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
	for _, tc := range cases {
		s := good
		tc.mut(&s)
		if s.Validate() == nil {
			t.Errorf("%s: Validate accepted a broken spec", tc.name)
		}
	}
}

// The full failure path: a sabotaged run trips the invariant checker,
// the soak marks it failed, the shrinker minimizes it, the repro JSON
// round-trips, and replaying the repro still fails.
func TestSoakSabotageShrinkReplay(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	spec := RandomSoakSpec(7)
	spec.Sabotage = true
	reason := soakFailure(ctx, spec)
	if reason == "" {
		t.Fatal("sabotaged run reported healthy")
	}
	if !strings.Contains(reason, "conservation") {
		t.Fatalf("unexpected failure reason: %s", reason)
	}

	shrunk, why, attempts := ShrinkSoak(ctx, spec, reason, 24)
	if why == "" {
		t.Fatal("shrinker lost the failure")
	}
	if attempts == 0 {
		t.Fatal("shrinker made no attempts on a shrinkable spec")
	}
	if !shrunk.Sabotage {
		t.Fatal("shrinker dropped the sabotage flag (the failure cause)")
	}
	if !specSmaller(shrunk, spec) {
		t.Fatalf("shrinker failed to reduce the spec at all: %+v", shrunk)
	}

	path := filepath.Join(dir, "sabotage.repro.json")
	rep := SoakRepro{Spec: shrunk, Reason: why, Original: reason, Shrunk: true, Attempts: attempts}
	if err := WriteSoakRepro(path, rep); err != nil {
		t.Fatalf("write repro: %v", err)
	}
	loaded, err := LoadSoakRepro(path)
	if err != nil {
		t.Fatalf("load repro: %v", err)
	}
	if !reflect.DeepEqual(loaded.Spec, shrunk) {
		t.Fatalf("repro spec did not round-trip:\n%+v\n%+v", loaded.Spec, shrunk)
	}
	if replay := ReplaySoak(ctx, loaded); replay == "" {
		t.Fatal("replaying the shrunken repro no longer fails")
	}
}

// Soak end-to-end: healthy runs pass; a sabotaged batch fails, and the
// shrunken repro lands in the artifact directory.
func TestSoakEndToEnd(t *testing.T) {
	ctx := context.Background()
	if _, err := Soak(ctx, SoakConfig{Runs: 2, Seed: 11, Workers: 2}); err != nil {
		t.Fatalf("healthy soak failed: %v", err)
	}
}

// Shrink candidates must never include invalid specs after filtering,
// and shrinking a healthy spec must keep the original.
func TestShrinkSoakHealthyNoop(t *testing.T) {
	t.Parallel()
	spec := RandomSoakSpec(5)
	got, reason, _ := ShrinkSoak(context.Background(), spec, "synthetic", 8)
	if reason != "synthetic" {
		t.Fatalf("healthy spec grew a new failure: %s", reason)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("healthy spec was mutated:\n%+v\n%+v", got, spec)
	}
}

func TestCheckSoakVerdicts(t *testing.T) {
	t.Parallel()
	var res Result
	res.Drained = true
	res.Stats.PacketsInjected = 10
	res.Stats.PacketsEjected = 9
	res.Stats.PacketsLost = 1
	if err := CheckSoak(res); err != nil {
		t.Fatalf("balanced ledger flagged: %v", err)
	}
	res.Stats.PacketsLost = 0
	if err := CheckSoak(res); err == nil || !strings.Contains(err.Error(), "ledger") {
		t.Fatalf("want ledger error, got %v", err)
	}
	res.Drained = false
	res.Drain.Stranded = 1
	if err := CheckSoak(res); err == nil || !strings.Contains(err.Error(), "drain") {
		t.Fatalf("want drain error, got %v", err)
	}
}
