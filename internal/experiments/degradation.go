package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// This file measures graceful degradation: how the RF-I design's latency
// advantage erodes as shortcut bands fail one by one, until — with every
// band dead — it converges to the pure-mesh baseline. The curve is the
// robustness counterpart of Figure 7: instead of asking how much RF-I
// silicon buys, it asks how much of the win each surviving band holds up.

// DegradationPoint is the measurement with k shortcut bands killed.
type DegradationPoint struct {
	Killed int

	// AvgLatency is the whole-run per-flit latency (transient included).
	AvgLatency float64

	// PostFaultLatency is the mean packet latency of traffic injected
	// after the last failure — the steady degraded state. With zero
	// kills it equals the overall packet latency.
	PostFaultLatency float64

	// Throughput is accepted traffic in ejected flits per cycle.
	Throughput float64

	// Availability is the fraction of band-cycles alive (obs.FaultRecorder).
	Availability float64

	Reroutes int64
	Drained  bool
}

// DegradationCurve kills k = 0..B of design d's shortcut bands a quarter
// of the way into the run (all at once, no replanning) and measures the
// latency that survives. The last point runs on a fully dead overlay and
// should sit at the pure-mesh baseline's latency.
func DegradationCurve(m *topology.Mesh, d Design, pat traffic.Pattern, opts Options) []DegradationPoint {
	opts = opts.WithDefaults()
	cfg := buildCached(m, d, func() traffic.Generator {
		return traffic.NewProbabilistic(m, pat, opts.Rate, opts.Seed)
	}, opts)
	killAt := opts.Cycles / 4
	points := make([]DegradationPoint, len(cfg.Shortcuts)+1)
	forEach(len(points), func(k int) {
		var sched fault.Schedule
		for i := 0; i < k; i++ {
			sched = append(sched, fault.Event{Cycle: killAt, Kind: fault.KillBand, A: i})
		}
		inj := fault.NewInjector(sched)
		rec := obs.NewFaultRecorder()
		gen := traffic.NewProbabilistic(m, pat, opts.Rate, opts.Seed)
		r := RunObserved(cfg, gen, opts, inj, rec)
		p := DegradationPoint{
			Killed:       k,
			AvgLatency:   r.Stats.AvgFlitLatency(),
			Throughput:   r.Stats.Throughput(),
			Availability: rec.Availability(),
			Reroutes:     r.Stats.DegradedReroutes,
			Drained:      r.Drained,
		}
		if _, post, _, ok := rec.LatencyDelta(); ok {
			p.PostFaultLatency = post
		} else {
			p.PostFaultLatency = r.Stats.AvgPacketLatency()
		}
		points[k] = p
	})
	return points
}

// RenderDegradation renders the curve as an aligned table.
func RenderDegradation(points []DegradationPoint) string {
	var b strings.Builder
	b.WriteString("killed  avg-lat/flit  post-fault-lat  throughput  availability  reroutes\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d  %12.2f  %14.2f  %10.2f  %12.4f  %8d\n",
			p.Killed, p.AvgLatency, p.PostFaultLatency, p.Throughput, p.Availability, p.Reroutes)
	}
	return b.String()
}
