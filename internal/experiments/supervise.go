package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/noc"
	"repro/internal/sweepcache"
	"repro/internal/traffic"
)

// SweepPoint is one independently runnable simulation in a supervised
// sweep.
type SweepPoint struct {
	// ID names the point; it keys the checkpoint file and the crash dump
	// and must be unique within a sweep and safe as a file name.
	ID string

	// Fingerprint is the point's content address (PointFingerprint):
	// equal fingerprints mean equal results. It keys the memoization
	// cache when SuperviseConfig.Cache is set and correlates crash dumps
	// and partial-failure errors with cache entries and NDJSON streams.
	// Empty disables memoization for this point.
	Fingerprint string

	// Meta is free-form descriptive context (design, workload, seed ...)
	// carried into crash dumps.
	Meta map[string]string

	// Cost is the point's admission-time cost estimate in simulated
	// cycles (Options.EstimatedCycles). Zero means unknown; the sweep
	// service sums Cost over a request to enforce its per-job ceiling.
	Cost int64

	// Run executes the point. It must honor ctx and should pass spec
	// through to RunCheckpointed (or equivalent) so retries resume from
	// the last checkpoint instead of starting over.
	Run func(ctx context.Context, spec CheckpointSpec) (Result, error)

	// Payload, when non-nil, is the point's portable wire description
	// (set by NewPortableSweepPoint): what an Executor ships to a worker
	// process. Closure-built points (NewSweepPoint) leave it nil and can
	// only run in-process.
	Payload *PointPayload
}

// NewSweepPoint builds the standard point: RunCheckpointed over a config
// and a deterministic generator factory (a fresh generator per attempt,
// so a resumed retry restores generator state from the checkpoint). The
// fingerprint is derived from the config, the generator's name and the
// run options.
func NewSweepPoint(id string, cfg noc.Config, mkGen func() traffic.Generator, opts Options, meta map[string]string) SweepPoint {
	return SweepPoint{
		ID:          id,
		Fingerprint: PointFingerprint(cfg, mkGen().Name(), opts),
		Meta:        meta,
		Cost:        opts.EstimatedCycles(),
		Run: func(ctx context.Context, spec CheckpointSpec) (Result, error) {
			return RunCheckpointed(ctx, cfg, mkGen(), opts, spec)
		},
	}
}

// PointOutcome is the per-point verdict of a supervised sweep.
type PointOutcome struct {
	ID          string
	Fingerprint string // the point's content address ("" when unset)
	Result      Result
	Err         error  // nil on success
	Attempts    int    // simulation attempts by this call (0 on a cache hit)
	Cached      bool   // Result came from the cache or a joined in-flight computation
	Recovered   bool   // a corrupt cached result was dropped and recomputed
	Panicked    bool   // at least one attempt panicked
	CrashDump   string // path of the last crash dump, "" if none
}

// SuperviseConfig tunes the supervisor.
type SuperviseConfig struct {
	// Workers bounds parallelism; defaults to the package Workers value.
	Workers int

	// Retries is how many times a failed point is re-attempted (so a
	// point runs at most Retries+1 times). Context cancellation is never
	// retried.
	Retries int

	// RetryBackoff is the wait before the first retry, doubling per
	// subsequent retry. Default 100ms.
	RetryBackoff time.Duration

	// PointTimeout bounds each attempt's wall-clock time. Zero means no
	// per-point limit. A timed-out attempt checkpoints and the retry
	// resumes from there.
	PointTimeout time.Duration

	// Dir is where checkpoints (<id>.ckpt) and crash dumps
	// (<id>.crash.json) live. Empty disables both.
	Dir string

	// CheckpointEvery is the auto-checkpoint interval in cycles.
	CheckpointEvery int64

	// Cache, when non-nil, memoizes successful results by point
	// fingerprint: a point whose fingerprint is already cached returns
	// instantly with Cached set, and concurrent points with equal
	// fingerprints — within one Supervise call or across calls sharing
	// the cache — are single-flighted so each unique fingerprint is
	// simulated exactly once. Points with an empty Fingerprint bypass the
	// cache. Failures are never cached.
	Cache *sweepcache.Cache

	// OnOutcome, when non-nil, is invoked with each point's index and
	// final outcome as soon as that point settles, enabling incremental
	// streaming while the rest of the sweep runs. It is called from
	// worker goroutines and must be safe for concurrent use.
	OnOutcome func(index int, out PointOutcome)

	// Exec, when non-nil, dispatches portable points (NewPortableSweepPoint)
	// to an out-of-process executor instead of running them on this
	// process's goroutines. A worker death (*WorkerCrash) is treated like
	// an in-process panic: crash dump, Panicked outcome, retry with
	// resume. Non-portable points ignore it and run in-process.
	Exec Executor
}

func (sc SuperviseConfig) withDefaults() SuperviseConfig {
	if sc.Workers <= 0 {
		sc.Workers = Workers
	}
	if sc.RetryBackoff <= 0 {
		sc.RetryBackoff = 100 * time.Millisecond
	}
	return sc
}

// CrashDump is the record written when a sweep point panics: enough to
// reproduce (config fingerprint via meta + seed) and to triage (cycle,
// audit, stack).
type CrashDump struct {
	ID          string            `json:"id"`
	Fingerprint string            `json:"fingerprint,omitempty"`
	Meta        map[string]string `json:"meta,omitempty"`
	Attempt     int               `json:"attempt"`
	Panic       string            `json:"panic"`
	Stack       string            `json:"stack"`
	// Cycle and Audit describe the network at the moment of the panic;
	// Cycle is -1 when the panic struck before network construction (and
	// always for worker-process deaths, whose network died with them).
	Cycle int64            `json:"cycle"`
	Audit *noc.AuditReport `json:"audit,omitempty"`

	// Evidence is the runtime state at failure time: memory accounting,
	// the configured GOMEMLIMIT and — for worker-process deaths — the
	// exit status, terminating signal and a stderr tail. It is what makes
	// an OOM kill distinguishable from a panic in quarantine evidence.
	Evidence *RuntimeEvidence `json:"evidence,omitempty"`
}

// Supervise runs a sweep under fault isolation: points execute on a
// bounded worker pool; a panicking point is caught, dumped to
// Dir/<id>.crash.json and retried with exponential backoff, resuming
// from its last checkpoint; a point that keeps failing is recorded and
// the rest of the sweep completes. The outcome slice is index-aligned
// with points. The returned error is non-nil if any point ultimately
// failed (partial results are still in the outcomes) or if ctx was
// cancelled.
func Supervise(ctx context.Context, sc SuperviseConfig, points []SweepPoint) ([]PointOutcome, error) {
	sc = sc.withDefaults()
	outcomes := make([]PointOutcome, len(points))

	workers := sc.Workers
	if workers > len(points) {
		workers = len(points)
	}
	next := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range next {
				supervisePoint(ctx, sc, points[i], &outcomes[i])
				if sc.OnOutcome != nil {
					sc.OnOutcome(i, outcomes[i])
				}
				done <- struct{}{}
			}
		}()
	}
	go func() {
		for i := range points {
			next <- i
		}
		close(next)
	}()
	for range points {
		<-done
	}

	var failures []string
	for i := range outcomes {
		if outcomes[i].Err != nil {
			failures = append(failures, describeFailure(&outcomes[i]))
		}
	}
	if err := ctx.Err(); err != nil {
		return outcomes, err
	}
	if len(failures) > 0 {
		return outcomes, fmt.Errorf("experiments: %d of %d sweep points failed: %s",
			len(failures), len(points), strings.Join(failures, "; "))
	}
	return outcomes, nil
}

// describeFailure names a failed point by ID and fingerprint, so
// partial-outcome errors correlate with cache keys, crash dumps and
// NDJSON stream entries instead of leaving only a positional index.
func describeFailure(o *PointOutcome) string {
	if o.Fingerprint == "" {
		return o.ID
	}
	return fmt.Sprintf("%s (fingerprint %s)", o.ID, o.Fingerprint)
}

// supervisePoint settles one point: through the memoization cache when
// one is configured (exactly-once per fingerprint, single-flighted), or
// by running the retry loop directly.
//
// A cached blob that fails to deserialize (bit rot, a chaos-injected
// corruption) is treated as a disk/memory fault, not a point failure:
// the poisoned entry is invalidated and the point recomputed once, so
// cache corruption degrades to a cache miss instead of an error the
// client can do nothing about. The outcome is marked Recovered.
func supervisePoint(ctx context.Context, sc SuperviseConfig, pt SweepPoint, out *PointOutcome) {
	out.ID = pt.ID
	out.Fingerprint = pt.Fingerprint
	if sc.Cache == nil || pt.Fingerprint == "" {
		runPointAttempts(ctx, sc, pt, out)
		return
	}
	for pass := 0; ; pass++ {
		out.Cached = false
		blob, hit, err := sc.Cache.Do(ctx, pt.Fingerprint, func() ([]byte, error) {
			runPointAttempts(ctx, sc, pt, out)
			if out.Err != nil {
				return nil, out.Err
			}
			return MarshalResult(out.Result)
		})
		if !hit {
			// Leader: out was filled in by runPointAttempts; a marshal
			// failure is the only error not already recorded there.
			if err != nil && out.Err == nil {
				out.Err = err
			}
			return
		}
		out.Cached = true
		if err != nil {
			out.Err = err
			return
		}
		res, uerr := UnmarshalResult(blob)
		if uerr == nil {
			out.Result = res
			out.Err = nil
			return
		}
		if pass > 0 {
			// Corrupt twice in a row: something is systematically wrong
			// (a broken MarshalResult, not a flipped bit); surface it.
			out.Err = uerr
			return
		}
		sc.Cache.Invalidate(pt.Fingerprint)
		out.Recovered = true
	}
}

// runPointAttempts is the retry loop: each attempt is panic-guarded,
// failed attempts back off exponentially and resume from the point's
// checkpoint.
func runPointAttempts(ctx context.Context, sc SuperviseConfig, pt SweepPoint, out *PointOutcome) {
	spec := CheckpointSpec{Every: sc.CheckpointEvery, Resume: true, Exec: sc.Exec}
	if sc.Dir != "" {
		spec.Path = filepath.Join(sc.Dir, pt.ID+".ckpt")
	}
	var net *noc.Network
	spec.OnNetwork = func(n *noc.Network) { net = n }

	for attempt := 0; attempt <= sc.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			if out.Err == nil {
				out.Err = err
			}
			return
		}
		out.Attempts++
		net = nil
		res, err := runPointGuarded(ctx, sc, pt, spec, attempt, &net, out)
		if err == nil {
			out.Result = res
			out.Err = nil
			return
		}
		out.Err = err
		if ctx.Err() != nil {
			return // parent cancelled: not the point's fault, don't retry
		}
		if errors.Is(err, ErrResume) && spec.Path != "" {
			// The checkpoint itself is unusable; retrying a load loop is
			// futile. Drop it and let the retry start fresh.
			os.Remove(spec.Path)
		}
		if attempt < sc.Retries {
			backoff := sc.RetryBackoff << uint(attempt)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
		}
	}
}

// runPointGuarded runs one attempt with panic isolation. A panic becomes
// an error after the crash dump is written.
func runPointGuarded(ctx context.Context, sc SuperviseConfig, pt SweepPoint, spec CheckpointSpec, attempt int, net **noc.Network, out *PointOutcome) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			out.Panicked = true
			dump := CrashDump{
				ID:          pt.ID,
				Fingerprint: pt.Fingerprint,
				Meta:        pt.Meta,
				Attempt:     attempt,
				Panic:       fmt.Sprint(r),
				Stack:       string(debug.Stack()),
				Cycle:       -1,
				Evidence:    captureEvidence(),
			}
			if n := *net; n != nil {
				dump.Cycle = n.Now()
				audit := n.Audit()
				dump.Audit = &audit
			}
			if path := writeCrashDump(sc.Dir, pt.ID, dump); path != "" {
				out.CrashDump = path
			}
			err = fmt.Errorf("experiments: point %s panicked: %v", pt.ID, r)
		}
	}()
	pctx := ctx
	if sc.PointTimeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, sc.PointTimeout)
		defer cancel()
	}
	res, err = pt.Run(pctx, spec)

	// A worker-process death takes the same path as an in-process panic:
	// dump, Panicked, retry-with-resume, quarantine. The dump's Cycle is
	// -1 (the network died with the worker) and its Stack is the worker's
	// stderr tail, which holds the Go runtime's own panic/fatal output.
	var wc *WorkerCrash
	if errors.As(err, &wc) {
		out.Panicked = true
		ev := wc.Evidence
		if ev == nil {
			ev = &RuntimeEvidence{}
		}
		ev.Worker = true
		ev.ExitCode = wc.ExitCode
		ev.Signal = wc.Signal
		ev.StderrTail = wc.StderrTail
		dump := CrashDump{
			ID:          pt.ID,
			Fingerprint: pt.Fingerprint,
			Meta:        pt.Meta,
			Attempt:     attempt,
			Panic:       "worker crash: " + wc.Reason,
			Stack:       wc.StderrTail,
			Cycle:       -1,
			Evidence:    ev,
		}
		if path := writeCrashDump(sc.Dir, pt.ID, dump); path != "" {
			out.CrashDump = path
		}
		err = fmt.Errorf("experiments: point %s worker crashed: %s", pt.ID, wc.Reason)
	}
	return res, err
}

// writeCrashDump persists the dump, returning its path ("" when Dir is
// unset or the write failed — a crash dump must never mask the crash).
func writeCrashDump(dir, id string, dump CrashDump) string {
	if dir == "" {
		return ""
	}
	blob, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return ""
	}
	path := filepath.Join(dir, id+".crash.json")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return ""
	}
	return path
}
