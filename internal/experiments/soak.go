package experiments

// Chaos-soak harness: randomized (config, fault schedule, seed) triples
// run under the fault-isolating supervisor, a health verdict per run
// (exactly-once delivery ledger, drain completion, plus the invariant
// checker's panics), and an automatic shrinker that minimizes a failing
// triple to the smallest spec that still fails — written out as a JSON
// repro that replays byte-for-byte.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// SoakSpec fully describes one chaos-soak run. It is JSON-serializable
// and self-contained: the same spec always produces the same simulation,
// which is what makes shrunken repros replayable.
type SoakSpec struct {
	MeshW int `json:"mesh_w"`
	MeshH int `json:"mesh_h"`

	// WidthBytes is the link width (4, 8 or 16).
	WidthBytes int `json:"width_bytes"`

	// VCs and BufDepth override noc defaults when nonzero.
	VCs      int `json:"vcs,omitempty"`
	BufDepth int `json:"buf_depth,omitempty"`

	// Shortcuts is the RF-I overlay plan.
	Shortcuts []shortcut.Edge `json:"shortcuts,omitempty"`

	// Pattern names a probabilistic traffic pattern (traffic.Patterns).
	Pattern string  `json:"pattern"`
	Rate    float64 `json:"rate"`

	Cycles      int64 `json:"cycles"`
	DrainCycles int64 `json:"drain_cycles"`
	Seed        int64 `json:"seed"`

	// Integrity enables end-to-end sequence/checksum protection;
	// Watchdog enables staged stall recovery (with soak-scaled horizons
	// so it actually fires inside short runs).
	Integrity bool `json:"integrity"`
	Watchdog  bool `json:"watchdog"`

	// Fault carries the stochastic fault rates (noc.FaultConfig);
	// Schedule carries the deterministic fault events.
	Fault    noc.FaultConfig `json:"fault"`
	Schedule fault.Schedule  `json:"schedule,omitempty"`

	// Sabotage deliberately corrupts the flit conservation counter
	// mid-run (Network.CorruptFlitCounter). It exists so tests can
	// exercise the failure → shrink → replay path on demand; real soaks
	// leave it false.
	Sabotage bool `json:"sabotage,omitempty"`
}

// soakWatchdog is the watchdog tuning for soak runs: horizons scaled to
// the short run lengths so recovery fires (and can be observed) inside
// the drain budget.
var soakWatchdog = noc.WatchdogConfig{
	Enabled: true, CheckEvery: 512, StallHorizon: 8_192, Grace: 1_024,
}

func patternByName(name string) (traffic.Pattern, bool) {
	for _, p := range traffic.Patterns() {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// Validate reports whether the spec describes a buildable simulation.
// The shrinker uses it to discard candidate mutations that would fail
// for configuration reasons rather than reproduce the bug.
func (s SoakSpec) Validate() error {
	if s.MeshW < 6 || s.MeshH < 6 || s.MeshW%2 != 0 || s.MeshH%2 != 0 {
		return fmt.Errorf("experiments: soak mesh %dx%d unsupported (want even, >= 6x6)", s.MeshW, s.MeshH)
	}
	if !tech.LinkWidth(s.WidthBytes).Valid() {
		return fmt.Errorf("experiments: soak link width %dB not calibrated", s.WidthBytes)
	}
	if _, ok := patternByName(s.Pattern); !ok {
		return fmt.Errorf("experiments: unknown soak traffic pattern %q", s.Pattern)
	}
	if s.Rate <= 0 || s.Rate > 1 {
		return fmt.Errorf("experiments: soak injection rate %g outside (0, 1]", s.Rate)
	}
	if s.Cycles < 1 || s.DrainCycles < 1 {
		return fmt.Errorf("experiments: soak cycle budgets must be positive (%d inject, %d drain)", s.Cycles, s.DrainCycles)
	}
	if s.VCs < 0 || s.BufDepth < 0 {
		return fmt.Errorf("experiments: negative soak VC parameters")
	}
	cfg, _ := s.config()
	return cfg.Validate()
}

// config assembles the noc configuration (call Validate first; this
// builds the mesh, which rejects unsupported dimensions by panicking).
func (s SoakSpec) config() (noc.Config, *topology.Mesh) {
	m := topology.New(s.MeshW, s.MeshH)
	cfg := noc.Config{
		Mesh:        m,
		Width:       tech.LinkWidth(s.WidthBytes),
		VCsPerClass: s.VCs,
		BufDepth:    s.BufDepth,
		Shortcuts:   append([]shortcut.Edge(nil), s.Shortcuts...),
		Fault:       s.Fault,
		Integrity:   s.Integrity,
	}
	if s.Watchdog {
		cfg.Watchdog = soakWatchdog
	}
	return cfg, m
}

// RandomSoakSpec draws a reproducible random soak spec: mesh size, link
// width, buffering, overlay plan, traffic, stochastic fault rates and a
// deterministic chaos schedule all derive from the seed.
func RandomSoakSpec(seed int64) SoakSpec {
	r := rng.New(seed)
	meshes := [][2]int{{6, 6}, {8, 6}, {8, 8}}
	widths := []int{4, 8, 16}
	wh := meshes[r.Intn(len(meshes))]
	s := SoakSpec{
		MeshW:       wh[0],
		MeshH:       wh[1],
		WidthBytes:  widths[r.Intn(len(widths))],
		VCs:         2 + r.Intn(3),
		BufDepth:    2 + r.Intn(4),
		Pattern:     traffic.Patterns()[r.Intn(len(traffic.Patterns()))].String(),
		Rate:        0.004 + r.Float64()*0.01,
		Cycles:      4_000 + r.Int63n(8_000),
		DrainCycles: 120_000,
		Seed:        seed,
		Integrity:   r.Intn(4) != 0, // 3 in 4 runs carry integrity headers
		Watchdog:    true,
	}
	m := topology.New(s.MeshW, s.MeshH)
	if budget := r.Intn(5); budget > 0 {
		s.Shortcuts = shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
			Budget: budget, MeshW: s.MeshW, MeshH: s.MeshH,
		})
	}
	pick := func(vals ...float64) float64 { return vals[r.Intn(len(vals))] }
	s.Fault = noc.FaultConfig{
		MeshBER:        pick(0, 0, 1e-5, 5e-5),
		RFBER:          pick(0, 1e-5, 1e-4),
		MisrouteRate:   pick(0, 1e-3, 5e-3),
		CreditLeakRate: pick(0, 0, 2e-4),
		StuckVCRate:    pick(0, 0, 1e-4),
		RetryLimit:     5 + r.Intn(4),
		Seed:           seed + 1,
	}
	if s.Integrity {
		s.Fault.MisdeliverRate = pick(0, 2e-3)
		s.Fault.DuplicateRate = pick(0, 2e-3)
	}
	bands := len(s.Shortcuts)
	if events := r.Intn(6); events > 0 {
		s.Schedule = fault.RandomChaosSchedule(seed+2, s.MeshW, s.MeshH, bands, events, s.Cycles)
	}
	return s
}

// saboteur corrupts the injected-flit counter once, mid-run, so the
// invariant checker's next audit fails. Test scaffolding for the
// failure path (see SoakSpec.Sabotage).
type saboteur struct {
	noc.BaseObserver
	at   int64
	done bool
}

func (s *saboteur) CycleEnd(n *noc.Network) {
	if !s.done && n.Now() >= s.at {
		n.CorruptFlitCounter(+1)
		s.done = true
	}
}

// RunSoakSpec executes one soak spec. The invariant checker is always
// attached (its panics are converted to errors here), and the fault
// schedule runs under a fresh Injector. The returned Result carries the
// drain report and full stats for CheckSoak.
func RunSoakSpec(ctx context.Context, spec SoakSpec, ck CheckpointSpec) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: soak run panicked: %v", r)
		}
	}()
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	cfg, m := spec.config()
	pat, _ := patternByName(spec.Pattern)
	gen := traffic.NewProbabilistic(m, pat, spec.Rate, spec.Seed)
	observers := []noc.Observer{fault.NewInjector(spec.Schedule)}
	if spec.Sabotage {
		observers = append(observers, &saboteur{at: spec.Cycles / 2})
	}
	opts := Options{
		Cycles:      spec.Cycles,
		DrainCycles: spec.DrainCycles,
		Rate:        spec.Rate,
		Seed:        spec.Seed,
		Check:       true,
	}
	return RunCheckpointed(ctx, cfg, gen, opts, ck, observers...)
}

// CheckSoak is the soak health verdict for a completed run: the drain
// must finish within budget and the exactly-once delivery ledger must
// close — every injected packet either ejected exactly once or was
// explicitly abandoned after its retry budget. Valid only for unicast
// workloads (which soak specs are).
func CheckSoak(res Result) error {
	if !res.Drained {
		return fmt.Errorf("drain budget exhausted: %d packets stranded after %d cycles, oldest head flit %d cycles old",
			res.Drain.Stranded, res.Drain.CyclesUsed, res.Drain.OldestHeadAge)
	}
	s := res.Stats
	if s.PacketsInjected != s.PacketsEjected+s.PacketsLost {
		return fmt.Errorf("exactly-once ledger broken: injected %d != ejected %d + lost %d",
			s.PacketsInjected, s.PacketsEjected, s.PacketsLost)
	}
	return nil
}

// soakFailure runs a spec and returns the reason it fails, or "" when it
// passes. Context cancellation is not a failure of the spec.
func soakFailure(ctx context.Context, spec SoakSpec) string {
	res, err := RunSoakSpec(ctx, spec, CheckpointSpec{})
	if err != nil {
		if ctx.Err() != nil {
			return ""
		}
		return err.Error()
	}
	if err := CheckSoak(res); err != nil {
		return err.Error()
	}
	return ""
}

// shrinkCandidates proposes one-step reductions of a failing spec, most
// aggressive first: drop schedule halves, then single events, then zero
// each stochastic rate, then shrink the run and the fabric.
func shrinkCandidates(s SoakSpec) []SoakSpec {
	var out []SoakSpec
	mut := func(f func(*SoakSpec)) {
		c := s
		c.Schedule = append(fault.Schedule(nil), s.Schedule...)
		c.Shortcuts = append([]shortcut.Edge(nil), s.Shortcuts...)
		f(&c)
		out = append(out, c)
	}
	// Schedule reduction: front half, back half, then each single event.
	if n := len(s.Schedule); n > 1 {
		mut(func(c *SoakSpec) { c.Schedule = c.Schedule[:n/2] })
		mut(func(c *SoakSpec) { c.Schedule = append(fault.Schedule(nil), s.Schedule[n/2:]...) })
	}
	for i := range s.Schedule {
		i := i
		mut(func(c *SoakSpec) { c.Schedule = append(c.Schedule[:i], c.Schedule[i+1:]...) })
	}
	// Zero each stochastic fault rate.
	rates := []struct {
		get func(*noc.FaultConfig) *float64
	}{
		{func(f *noc.FaultConfig) *float64 { return &f.MeshBER }},
		{func(f *noc.FaultConfig) *float64 { return &f.RFBER }},
		{func(f *noc.FaultConfig) *float64 { return &f.MisrouteRate }},
		{func(f *noc.FaultConfig) *float64 { return &f.MisdeliverRate }},
		{func(f *noc.FaultConfig) *float64 { return &f.DuplicateRate }},
		{func(f *noc.FaultConfig) *float64 { return &f.CreditLeakRate }},
		{func(f *noc.FaultConfig) *float64 { return &f.StuckVCRate }},
	}
	for _, rt := range rates {
		if *rt.get(&s.Fault) != 0 {
			rt := rt
			mut(func(c *SoakSpec) { *rt.get(&c.Fault) = 0 })
		}
	}
	// Shrink the run and the fabric.
	if s.Cycles > 512 {
		mut(func(c *SoakSpec) { c.Cycles /= 2 })
	}
	if s.Rate > 0.001 {
		mut(func(c *SoakSpec) { c.Rate /= 2 })
	}
	if len(s.Shortcuts) > 0 {
		mut(func(c *SoakSpec) { c.Shortcuts = nil })
	}
	if s.VCs > 2 {
		mut(func(c *SoakSpec) { c.VCs-- })
	}
	if s.BufDepth > 2 {
		mut(func(c *SoakSpec) { c.BufDepth-- })
	}
	return out
}

// ShrinkSoak greedily minimizes a failing spec: each round tries the
// candidate reductions in order and recurses on the first that still
// fails (any failure reason counts — the minimal repro may surface the
// defect differently than the original). At most budget candidate runs
// execute; the original reason is kept when nothing shrinks. Returns the
// minimized spec, its failure reason, and the attempts used.
func ShrinkSoak(ctx context.Context, spec SoakSpec, reason string, budget int) (SoakSpec, string, int) {
	if budget <= 0 {
		budget = 64
	}
	cur, curReason := spec, reason
	attempts := 0
	for attempts < budget {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			if attempts >= budget || ctx.Err() != nil {
				break
			}
			if cand.Validate() != nil {
				continue
			}
			attempts++
			if why := soakFailure(ctx, cand); why != "" {
				cur, curReason = cand, why
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur, curReason, attempts
}

// SoakRepro is the crash-dump JSON written for a failed soak run: the
// minimized spec plus the failure it reproduces. Replay it with
// ReplaySoak (cmd/rfsim -shrink).
type SoakRepro struct {
	// Spec is the smallest still-failing spec the shrinker found.
	Spec SoakSpec `json:"spec"`

	// Reason is Spec's failure, Original the unshrunk spec's.
	Reason   string `json:"reason"`
	Original string `json:"original_reason,omitempty"`

	// Shrunk is false when no reduction of the original spec still
	// failed (Spec is then the original).
	Shrunk bool `json:"shrunk"`

	// Attempts is how many candidate runs the shrinker spent.
	Attempts int `json:"attempts"`
}

// WriteSoakRepro persists a repro as indented JSON.
func WriteSoakRepro(path string, rep SoakRepro) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadSoakRepro reads a repro written by WriteSoakRepro.
func LoadSoakRepro(path string) (SoakRepro, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return SoakRepro{}, err
	}
	var rep SoakRepro
	if err := json.Unmarshal(blob, &rep); err != nil {
		return SoakRepro{}, fmt.Errorf("experiments: bad soak repro %s: %w", path, err)
	}
	return rep, nil
}

// ReplaySoak re-runs a repro's spec and reports the failure it
// reproduces ("" when it no longer fails — the bug is fixed or the
// repro is stale).
func ReplaySoak(ctx context.Context, rep SoakRepro) string {
	return soakFailure(ctx, rep.Spec)
}

// SoakConfig tunes a chaos soak.
type SoakConfig struct {
	// Runs is how many random specs to soak.
	Runs int

	// Seed derives each run's spec (run i uses Seed+i), so a soak is
	// reproducible end to end.
	Seed int64

	// Dir receives crash dumps, checkpoints and shrunken repro JSONs.
	// Empty disables persistence (failures are still reported).
	Dir string

	// ShrinkBudget bounds candidate runs per failing spec (default 64).
	ShrinkBudget int

	// Workers bounds soak parallelism (default: package Workers).
	Workers int
}

// SoakOutcome describes one soak run's fate.
type SoakOutcome struct {
	ID     string
	Spec   SoakSpec
	Reason string // "" when healthy
	Repro  string // path of the shrunken repro JSON, "" if none written
}

// Soak runs sc.Runs randomized soak specs under the fault-isolating
// supervisor, applies the health verdict to each, and shrinks every
// failure to a minimal repro (written to Dir as <id>.repro.json when Dir
// is set). The error is non-nil when any run failed; outcomes carry the
// details either way.
func Soak(ctx context.Context, sc SoakConfig) ([]SoakOutcome, error) {
	if sc.Runs <= 0 {
		sc.Runs = 1
	}
	outcomes := make([]SoakOutcome, sc.Runs)
	points := make([]SweepPoint, sc.Runs)
	for i := 0; i < sc.Runs; i++ {
		spec := RandomSoakSpec(sc.Seed + int64(i))
		id := fmt.Sprintf("soak-%d", sc.Seed+int64(i))
		outcomes[i] = SoakOutcome{ID: id, Spec: spec}
		points[i] = SweepPoint{
			ID: id,
			Meta: map[string]string{
				"pattern": spec.Pattern,
				"mesh":    fmt.Sprintf("%dx%d", spec.MeshW, spec.MeshH),
				"seed":    fmt.Sprint(spec.Seed),
			},
			Run: func(ctx context.Context, ck CheckpointSpec) (Result, error) {
				return RunSoakSpec(ctx, spec, ck)
			},
		}
	}
	results, supErr := Supervise(ctx, SuperviseConfig{
		Workers: sc.Workers, Retries: 0, Dir: sc.Dir,
	}, points)
	if ctx.Err() != nil {
		return outcomes, ctx.Err()
	}
	_ = supErr // per-point errors are folded into the verdicts below

	failures := 0
	for i := range outcomes {
		o := &outcomes[i]
		switch {
		case results[i].Err != nil:
			o.Reason = results[i].Err.Error()
		default:
			if err := CheckSoak(results[i].Result); err != nil {
				o.Reason = err.Error()
			}
		}
		if o.Reason == "" {
			continue
		}
		failures++
		shrunk, reason, attempts := ShrinkSoak(ctx, o.Spec, o.Reason, sc.ShrinkBudget)
		rep := SoakRepro{
			Spec:     shrunk,
			Reason:   reason,
			Original: o.Reason,
			Shrunk:   attempts > 0 && reason != o.Reason || specSmaller(shrunk, o.Spec),
			Attempts: attempts,
		}
		if sc.Dir != "" {
			path := filepath.Join(sc.Dir, o.ID+".repro.json")
			if err := WriteSoakRepro(path, rep); err == nil {
				o.Repro = path
			}
		}
		o.Spec, o.Reason = shrunk, reason
	}
	if failures > 0 {
		return outcomes, fmt.Errorf("experiments: %d of %d soak runs failed", failures, sc.Runs)
	}
	return outcomes, nil
}

// specSmaller reports whether a is a strict reduction of b on any
// shrinkable axis (used only to label repros as shrunk).
func specSmaller(a, b SoakSpec) bool {
	return len(a.Schedule) < len(b.Schedule) ||
		a.Cycles < b.Cycles || a.Rate < b.Rate ||
		len(a.Shortcuts) < len(b.Shortcuts) ||
		a.VCs < b.VCs || a.BufDepth < b.BufDepth ||
		a.Fault != b.Fault
}
