package experiments

import (
	"fmt"
	"strings"

	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// NormPoint is one design point on one workload, normalized to that
// workload's 16 B baseline: Latency < 1 is faster, Power < 1 is cheaper.
type NormPoint struct {
	Latency float64
	Power   float64
}

// ---------------------------------------------------------------------
// Figure 1: traffic by manhattan distance for the application traces.
// ---------------------------------------------------------------------

// Fig1Result holds per-application hop-distance histograms collected on
// the 16 B baseline mesh.
type Fig1Result struct {
	Apps       []string
	Histograms [][]int64
}

// Fig1 reproduces the paper's Figure 1 for all five application traces
// (the paper plots x264 and bodytrack).
func Fig1(m *topology.Mesh, opts Options) Fig1Result {
	opts = opts.WithDefaults()
	apps := traffic.Apps()
	out := Fig1Result{
		Apps:       make([]string, len(apps)),
		Histograms: make([][]int64, len(apps)),
	}
	forEach(len(apps), func(i int) {
		r := RunDesignApp(m, Design{Kind: Baseline, Width: tech.Width16B}, apps[i], opts)
		out.Apps[i] = apps[i].String()
		out.Histograms[i] = r.Stats.MsgsByDistance
	})
	return out
}

// Render draws the histograms as ASCII bar charts.
func (r Fig1Result) Render() string {
	var b strings.Builder
	for i, app := range r.Apps {
		fmt.Fprintf(&b, "%s traffic by manhattan distance:\n", app)
		labels := make([]string, 0, len(r.Histograms[i])-1)
		counts := make([]int64, 0, len(r.Histograms[i])-1)
		for d := 1; d < len(r.Histograms[i]); d++ {
			labels = append(labels, fmt.Sprintf("%2d", d))
			counts = append(counts, r.Histograms[i][d])
		}
		b.WriteString(stats.Histogram(labels, counts, 50))
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 7: static vs adaptive-50 vs adaptive-25 on the 16 B mesh.
// ---------------------------------------------------------------------

// Fig7Result maps trace x design to normalized latency and power.
type Fig7Result struct {
	Traces  []string
	Designs []string
	// Points[d][t] is design d on trace t.
	Points [][]NormPoint
}

// Fig7Designs are the paper's three Figure 7 configurations.
func Fig7Designs() []Design {
	return []Design{
		{Kind: Static, Width: tech.Width16B},
		{Kind: Adaptive, RFRouters: 50, Width: tech.Width16B},
		{Kind: Adaptive, RFRouters: 25, Width: tech.Width16B},
	}
}

// Fig7 reproduces the RF-enabled-router trade-off study.
func Fig7(m *topology.Mesh, opts Options) Fig7Result {
	return compareDesigns(m, Fig7Designs(), opts)
}

// compareDesigns runs each design over all seven probabilistic traces
// (in parallel across independent simulations) and normalizes against
// the per-trace 16 B baseline.
func compareDesigns(m *topology.Mesh, designs []Design, opts Options) Fig7Result {
	opts = opts.WithDefaults()
	pats := traffic.Patterns()
	out := Fig7Result{
		Traces:  make([]string, len(pats)),
		Designs: make([]string, len(designs)),
		Points:  make([][]NormPoint, len(designs)),
	}
	for di, d := range designs {
		out.Designs[di] = d.Name()
		out.Points[di] = make([]NormPoint, len(pats))
	}
	base := make([]Result, len(pats))
	forEach(len(pats), func(ti int) {
		out.Traces[ti] = pats[ti].String()
		base[ti] = RunDesign(m, Design{Kind: Baseline, Width: tech.Width16B}, pats[ti], opts)
	})
	forEach(len(designs)*len(pats), func(k int) {
		di, ti := k/len(pats), k%len(pats)
		r := RunDesign(m, designs[di], pats[ti], opts)
		out.Points[di][ti] = NormPoint{
			Latency: r.AvgLatency / base[ti].AvgLatency,
			Power:   r.PowerW / base[ti].PowerW,
		}
	})
	return out
}

// Means returns the geometric-mean normalized latency and power of each
// design across traces.
func (r Fig7Result) Means() []NormPoint {
	out := make([]NormPoint, len(r.Designs))
	for di := range r.Designs {
		lat := make([]float64, len(r.Traces))
		pow := make([]float64, len(r.Traces))
		for ti := range r.Traces {
			lat[ti] = r.Points[di][ti].Latency
			pow[ti] = r.Points[di][ti].Power
		}
		out[di] = NormPoint{
			Latency: stats.GeoMeanRatios(lat),
			Power:   stats.GeoMeanRatios(pow),
		}
	}
	return out
}

// Render draws the trace x design matrix.
func (r Fig7Result) Render() string {
	header := []string{"trace"}
	for _, d := range r.Designs {
		header = append(header, d+" lat", d+" pow")
	}
	t := stats.NewTable(header...)
	for ti, tr := range r.Traces {
		row := []string{tr}
		for di := range r.Designs {
			p := r.Points[di][ti]
			row = append(row, fmt.Sprintf("%.3f", p.Latency), fmt.Sprintf("%.3f", p.Power))
		}
		t.AddRow(row...)
	}
	means := r.Means()
	row := []string{"geomean"}
	for _, mp := range means {
		row = append(row, fmt.Sprintf("%.3f", mp.Latency), fmt.Sprintf("%.3f", mp.Power))
	}
	t.AddRow(row...)
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 8: mesh bandwidth reduction (16/8/4 B) x (baseline/static/
// adaptive).
// ---------------------------------------------------------------------

// Fig8Designs are the paper's Figure 8 design points in presentation
// order: for each width, baseline, static, adaptive-50.
func Fig8Designs() []Design {
	var out []Design
	for _, w := range tech.Widths() {
		out = append(out,
			Design{Kind: Baseline, Width: w},
			Design{Kind: Static, Width: w},
			Design{Kind: Adaptive, RFRouters: 50, Width: w},
		)
	}
	return out
}

// Fig8 reproduces the bandwidth-reduction study.
func Fig8(m *topology.Mesh, opts Options) Fig7Result {
	return compareDesigns(m, Fig8Designs(), opts)
}

// ---------------------------------------------------------------------
// Table 2: area of network designs.
// ---------------------------------------------------------------------

// Table2Row is one row of the paper's Table 2, in mm^2.
type Table2Row struct {
	Design string
	Router float64
	Link   float64
	RFI    float64
	Total  float64
}

// Table2 reproduces the area table analytically (no simulation needed).
func Table2(m *topology.Mesh) []Table2Row {
	var rows []Table2Row
	add := func(name string, cfg noc.Config) {
		a := power.ComputeArea(noc.New(cfg).Config())
		rows = append(rows, Table2Row{
			Design: name, Router: a.Router, Link: a.Link, RFI: a.RFI, Total: a.Total(),
		})
	}
	for _, w := range tech.Widths() {
		add(fmt.Sprintf("Mesh Baseline (%s)", w), noc.Config{Mesh: m, Width: w})
	}
	for _, w := range tech.Widths() {
		add(fmt.Sprintf("Mesh (%s) Arch-Specific", w),
			noc.Config{Mesh: m, Width: w, Shortcuts: StaticShortcuts(m, tech.ShortcutBudget)})
		add(fmt.Sprintf("Mesh (%s) + 50 RF-I APs", w),
			noc.Config{Mesh: m, Width: w, RFEnabled: m.RFPlacement(50)})
	}
	return rows
}

// RenderTable2 draws the table.
func RenderTable2(rows []Table2Row) string {
	t := stats.NewTable("Design", "Router Area", "Link Area", "RF-I Area", "Total")
	for _, r := range rows {
		t.AddRow(r.Design,
			fmt.Sprintf("%.2f", r.Router), fmt.Sprintf("%.2f", r.Link),
			fmt.Sprintf("%.2f", r.RFI), fmt.Sprintf("%.2f", r.Total))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 9: multicast (VCT vs RF-MC vs MC+SC at 20%/50% locality).
// ---------------------------------------------------------------------

// Fig9Result maps trace x (design, locality) to normalized points.
type Fig9Result struct {
	Traces  []string
	Configs []string
	Points  [][]NormPoint // [config][trace]
}

type fig9Config struct {
	name     string
	locality int
	design   Design
}

func fig9Configs() []fig9Config {
	var out []fig9Config
	for _, loc := range []int{20, 50} {
		out = append(out,
			fig9Config{fmt.Sprintf("VCT-%d", loc), loc,
				Design{Kind: Baseline, Width: tech.Width16B, Multicast: noc.MulticastVCT}},
			fig9Config{fmt.Sprintf("MC-%d", loc), loc,
				Design{Kind: Baseline, Width: tech.Width16B, Multicast: noc.MulticastRF, RFRouters: 50}},
			fig9Config{fmt.Sprintf("MC+SC-%d", loc), loc,
				Design{Kind: Adaptive, RFRouters: 50, Width: tech.Width16B,
					Multicast: noc.MulticastRF, ShortcutBudget: 15}},
		)
	}
	return out
}

// Fig9 reproduces the multicast study: each configuration is normalized
// to the 16 B baseline mesh delivering the same multicasts as unicast
// expansions.
func Fig9(m *topology.Mesh, opts Options) Fig9Result {
	opts = opts.WithDefaults()
	cfgs := fig9Configs()
	pats := traffic.Patterns()
	out := Fig9Result{
		Traces:  make([]string, len(pats)),
		Configs: make([]string, len(cfgs)),
		Points:  make([][]NormPoint, len(cfgs)),
	}
	for ci, c := range cfgs {
		out.Configs[ci] = c.name
		out.Points[ci] = make([]NormPoint, len(pats))
	}
	locs := []int{20, 50}
	base := make([][]Result, len(pats)) // [trace][locIdx]
	for ti := range base {
		base[ti] = make([]Result, len(locs))
		out.Traces[ti] = pats[ti].String()
	}
	forEach(len(pats)*len(locs), func(k int) {
		ti, li := k/len(locs), k%len(locs)
		base[ti][li] = RunDesignMulticast(m,
			Design{Kind: Baseline, Width: tech.Width16B, Multicast: noc.MulticastExpand},
			pats[ti], locs[li], opts)
	})
	forEach(len(cfgs)*len(pats), func(k int) {
		ci, ti := k/len(pats), k%len(pats)
		c := cfgs[ci]
		r := RunDesignMulticast(m, c.design, pats[ti], c.locality, opts)
		li := 0
		if c.locality == 50 {
			li = 1
		}
		b := base[ti][li]
		out.Points[ci][ti] = NormPoint{
			Latency: r.AvgLatency / b.AvgLatency,
			Power:   r.PowerW / b.PowerW,
		}
	})
	return out
}

// Means returns geometric means across traces per configuration.
func (r Fig9Result) Means() []NormPoint {
	out := make([]NormPoint, len(r.Configs))
	for ci := range r.Configs {
		lat := make([]float64, len(r.Traces))
		pow := make([]float64, len(r.Traces))
		for ti := range r.Traces {
			lat[ti] = r.Points[ci][ti].Latency
			pow[ti] = r.Points[ci][ti].Power
		}
		out[ci] = NormPoint{Latency: stats.GeoMeanRatios(lat), Power: stats.GeoMeanRatios(pow)}
	}
	return out
}

// Render draws the matrix.
func (r Fig9Result) Render() string {
	header := []string{"trace"}
	for _, c := range r.Configs {
		header = append(header, c+" lat", c+" pow")
	}
	t := stats.NewTable(header...)
	for ti, tr := range r.Traces {
		row := []string{tr}
		for ci := range r.Configs {
			p := r.Points[ci][ti]
			row = append(row, fmt.Sprintf("%.3f", p.Latency), fmt.Sprintf("%.3f", p.Power))
		}
		t.AddRow(row...)
	}
	means := r.Means()
	row := []string{"geomean"}
	for _, mp := range means {
		row = append(row, fmt.Sprintf("%.3f", mp.Latency), fmt.Sprintf("%.3f", mp.Power))
	}
	t.AddRow(row...)
	return t.String()
}

// ---------------------------------------------------------------------
// Figure 10: unified power-performance comparison.
// ---------------------------------------------------------------------

// Fig10Line is one architecture traced across the three link widths;
// points are geometric means over the probabilistic traces, normalized to
// the 16 B baseline. Performance is reported the way the paper plots it:
// normalized performance = baseline latency / design latency (higher is
// better), while power stays a ratio (lower is better).
type Fig10Line struct {
	Name   string
	Widths []string
	Perf   []float64
	Power  []float64
}

// Fig10a compares the unicast architectures: baseline, wire shortcuts,
// static RF shortcuts, adaptive RF shortcuts.
func Fig10a(m *topology.Mesh, opts Options) []Fig10Line {
	opts = opts.WithDefaults()
	archs := []struct {
		name string
		mk   func(w tech.LinkWidth) Design
	}{
		{"Mesh Baseline", func(w tech.LinkWidth) Design { return Design{Kind: Baseline, Width: w} }},
		{"Mesh Wire Shortcuts", func(w tech.LinkWidth) Design { return Design{Kind: WireStatic, Width: w} }},
		{"Mesh Static Shortcuts", func(w tech.LinkWidth) Design { return Design{Kind: Static, Width: w} }},
		{"Mesh Adaptive Shortcuts", func(w tech.LinkWidth) Design { return Design{Kind: Adaptive, RFRouters: 50, Width: w} }},
	}
	pats := traffic.Patterns()
	widths := tech.Widths()
	base := make([]Result, len(pats))
	forEach(len(pats), func(ti int) {
		base[ti] = RunDesign(m, Design{Kind: Baseline, Width: tech.Width16B}, pats[ti], opts)
	})
	// raw[a][w][t]
	raw := make([][][]Result, len(archs))
	for ai := range raw {
		raw[ai] = make([][]Result, len(widths))
		for wi := range raw[ai] {
			raw[ai][wi] = make([]Result, len(pats))
		}
	}
	forEach(len(archs)*len(widths)*len(pats), func(k int) {
		ai := k / (len(widths) * len(pats))
		wi := (k / len(pats)) % len(widths)
		ti := k % len(pats)
		raw[ai][wi][ti] = RunDesign(m, archs[ai].mk(widths[wi]), pats[ti], opts)
	})
	var out []Fig10Line
	for ai, a := range archs {
		line := Fig10Line{Name: a.name}
		for wi, w := range widths {
			var perf, pow []float64
			for ti := range pats {
				r := raw[ai][wi][ti]
				perf = append(perf, base[ti].AvgLatency/r.AvgLatency)
				pow = append(pow, r.PowerW/base[ti].PowerW)
			}
			line.Widths = append(line.Widths, w.String())
			line.Perf = append(line.Perf, stats.GeoMeanRatios(perf))
			line.Power = append(line.Power, stats.GeoMeanRatios(pow))
		}
		out = append(out, line)
	}
	return out
}

// Fig10b compares the multicast architectures: baseline (unicast
// expansion), RF multicast alone, adaptive shortcuts with expansion, and
// adaptive shortcuts plus RF multicast. Locality 20% workloads.
func Fig10b(m *topology.Mesh, opts Options) []Fig10Line {
	opts = opts.WithDefaults()
	const loc = 20
	archs := []struct {
		name string
		mk   func(w tech.LinkWidth) Design
	}{
		{"Mesh Baseline", func(w tech.LinkWidth) Design {
			return Design{Kind: Baseline, Width: w, Multicast: noc.MulticastExpand}
		}},
		{"RF Multicast", func(w tech.LinkWidth) Design {
			return Design{Kind: Baseline, Width: w, Multicast: noc.MulticastRF, RFRouters: 50}
		}},
		{"Adaptive Shortcuts", func(w tech.LinkWidth) Design {
			return Design{Kind: Adaptive, RFRouters: 50, Width: w, Multicast: noc.MulticastExpand}
		}},
		{"Adaptive Shortcuts + RF Multicast", func(w tech.LinkWidth) Design {
			return Design{Kind: Adaptive, RFRouters: 50, Width: w,
				Multicast: noc.MulticastRF, ShortcutBudget: 15}
		}},
	}
	pats := traffic.Patterns()
	widths := tech.Widths()
	base := make([]Result, len(pats))
	forEach(len(pats), func(ti int) {
		base[ti] = RunDesignMulticast(m,
			Design{Kind: Baseline, Width: tech.Width16B, Multicast: noc.MulticastExpand},
			pats[ti], loc, opts)
	})
	raw := make([][][]Result, len(archs))
	for ai := range raw {
		raw[ai] = make([][]Result, len(widths))
		for wi := range raw[ai] {
			raw[ai][wi] = make([]Result, len(pats))
		}
	}
	forEach(len(archs)*len(widths)*len(pats), func(k int) {
		ai := k / (len(widths) * len(pats))
		wi := (k / len(pats)) % len(widths)
		ti := k % len(pats)
		raw[ai][wi][ti] = RunDesignMulticast(m, archs[ai].mk(widths[wi]), pats[ti], loc, opts)
	})
	var out []Fig10Line
	for ai, a := range archs {
		line := Fig10Line{Name: a.name}
		for wi, w := range widths {
			var perf, pow []float64
			for ti := range pats {
				r := raw[ai][wi][ti]
				perf = append(perf, base[ti].AvgLatency/r.AvgLatency)
				pow = append(pow, r.PowerW/base[ti].PowerW)
			}
			line.Widths = append(line.Widths, w.String())
			line.Perf = append(line.Perf, stats.GeoMeanRatios(perf))
			line.Power = append(line.Power, stats.GeoMeanRatios(pow))
		}
		out = append(out, line)
	}
	return out
}

// RenderFig10 draws the power-performance lines.
func RenderFig10(lines []Fig10Line) string {
	t := stats.NewTable("architecture", "width", "norm perf", "norm power")
	for _, l := range lines {
		for i := range l.Widths {
			t.AddRow(l.Name, l.Widths[i],
				fmt.Sprintf("%.3f", l.Perf[i]), fmt.Sprintf("%.3f", l.Power[i]))
		}
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Application traces: adaptive 4 B versus the 16 B baseline (Section
// 5.1.2's application results).
// ---------------------------------------------------------------------

// AppResult is one application's comparison.
type AppResult struct {
	App      string
	Latency  float64 // adaptive-4B / baseline-16B
	Power    float64
	Baseline Result
	Adaptive Result
}

// AppStudy runs all five applications on the 16 B baseline and the
// adaptive 4 B design, in parallel.
func AppStudy(m *topology.Mesh, opts Options) []AppResult {
	opts = opts.WithDefaults()
	apps := traffic.Apps()
	out := make([]AppResult, len(apps))
	forEach(len(apps), func(i int) {
		app := apps[i]
		base := RunDesignApp(m, Design{Kind: Baseline, Width: tech.Width16B}, app, opts)
		ad := RunDesignApp(m, Design{Kind: Adaptive, RFRouters: 50, Width: tech.Width4B}, app, opts)
		out[i] = AppResult{
			App:      app.String(),
			Latency:  ad.AvgLatency / base.AvgLatency,
			Power:    ad.PowerW / base.PowerW,
			Baseline: base,
			Adaptive: ad,
		}
	})
	return out
}

// RenderAppStudy draws the application comparison. When the runs
// carried latency histograms (Options.Histograms), each row also shows
// the adaptive design's packet-latency tail (p50/p99/max in cycles)
// rather than means alone.
func RenderAppStudy(rs []AppResult) string {
	withDist := len(rs) > 0 && rs[0].Adaptive.PacketLatencyDist.Count > 0
	header := []string{"application", "norm latency", "norm power", "power saving"}
	if withDist {
		header = append(header, "p50", "p99", "max")
	}
	t := stats.NewTable(header...)
	var lat, pow []float64
	for _, r := range rs {
		row := []string{r.App, fmt.Sprintf("%.3f", r.Latency),
			fmt.Sprintf("%.3f", r.Power), stats.Pct(r.Power)}
		if withDist {
			d := r.Adaptive.PacketLatencyDist
			row = append(row, fmt.Sprintf("%d", d.P50), fmt.Sprintf("%d", d.P99),
				fmt.Sprintf("%d", d.Max))
		}
		t.AddRow(row...)
		lat = append(lat, r.Latency)
		pow = append(pow, r.Power)
	}
	t.AddRow("geomean", fmt.Sprintf("%.3f", stats.GeoMeanRatios(lat)),
		fmt.Sprintf("%.3f", stats.GeoMeanRatios(pow)), stats.Pct(stats.GeoMeanRatios(pow)))
	return t.String()
}
