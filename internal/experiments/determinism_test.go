package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

// resetAdaptiveCache empties the memoized shortcut selections so each
// determinism run recomputes them from scratch.
func resetAdaptiveCache() {
	adaptiveCacheMu.Lock()
	adaptiveCache = map[string][]shortcut.Edge{}
	adaptiveCacheMu.Unlock()
}

// Same seed and Options must produce bit-identical results whether the
// figure runners execute serially or on the full worker pool: each
// simulation owns its RNG and network, and the shared adaptive cache is
// keyed on everything selection consumes.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// forEach concurrency is set by Workers, not GOMAXPROCS, so even a
	// single-CPU machine interleaves the worker goroutines.
	pool := runtime.GOMAXPROCS(0)
	if pool < 4 {
		pool = 4
	}
	m := topology.New10x10()
	opts := Options{Cycles: 1200, ProfileCycles: 800, Seed: 9, Histograms: true}

	// One static and one adaptive design: covers the plain path and the
	// memoized shortcut-selection path without Fig7's full design sweep.
	designs := []Design{
		{Kind: Static, Width: tech.Width4B},
		{Kind: Adaptive, RFRouters: 50, Width: tech.Width4B},
	}
	capture := func(workers int) Fig7Result {
		prev := Workers
		Workers = workers
		defer func() { Workers = prev }()
		resetAdaptiveCache()
		return compareDesigns(m, designs, opts)
	}

	serial := capture(1)
	parallelRun := capture(pool)

	if !reflect.DeepEqual(serial, parallelRun) {
		t.Errorf("Fig7 differs between Workers=1 and Workers=%d:\nserial:   %+v\nparallel: %+v",
			pool, serial, parallelRun)
	}

	// And a repeat at full parallelism must match itself (no run-order or
	// map-iteration dependence hiding in the cache path).
	again := capture(pool)
	if !reflect.DeepEqual(parallelRun, again) {
		t.Error("repeated parallel run differs from the first")
	}
}
