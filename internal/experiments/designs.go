// Package experiments assembles design points and regenerates every table
// and figure of the paper's evaluation (Section 5): Figure 1 (traffic by
// manhattan distance), Figure 7 (number of RF-enabled routers), Figure 8
// (mesh bandwidth reduction), Table 2 (area), Figure 9 (multicast), and
// Figures 10a/10b (unified power-performance comparisons), plus the
// application-trace summary and the headline-claims digest.
package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// DesignKind distinguishes how (and whether) shortcuts are provisioned.
type DesignKind int

const (
	// Baseline is the plain mesh with no overlay.
	Baseline DesignKind = iota
	// Static uses the fixed architecture-specific shortcut set chosen at
	// design time by the Figure 3(b) max-cost heuristic.
	Static
	// WireStatic is the same static shortcut set implemented in buffered
	// RC wire rather than RF-I (Figure 10a's "Mesh Wire Shortcuts").
	WireStatic
	// Adaptive re-selects application-specific shortcuts per workload
	// from the RF-enabled router set (region-based selection).
	Adaptive
)

// String implements fmt.Stringer.
func (k DesignKind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case Static:
		return "static"
	case WireStatic:
		return "wire-static"
	case Adaptive:
		return "adaptive"
	}
	return fmt.Sprintf("DesignKind(%d)", int(k))
}

// Design names one network design point.
type Design struct {
	Kind  DesignKind
	Width tech.LinkWidth

	// RFRouters is the access-point count for Adaptive designs
	// (25, 50 or 100).
	RFRouters int

	// Multicast enables a delivery mechanism for multicast messages.
	Multicast noc.MulticastMode

	// ShortcutBudget overrides the default budget of 16 (the MC+SC
	// configuration uses 15 shortcuts, leaving one band for multicast).
	ShortcutBudget int

	// ShortcutWidthBytes overrides the 16 B shortcut width for the
	// width-ablation study; the budget scales to keep the 256 B aggregate.
	ShortcutWidthBytes int
}

// Name renders a compact design label ("adaptive50-4B").
func (d Design) Name() string {
	s := d.Kind.String()
	if d.Kind == Adaptive {
		s = fmt.Sprintf("%s%d", s, d.RFRouters)
	}
	s = fmt.Sprintf("%s-%s", s, d.Width)
	switch d.Multicast {
	case noc.MulticastVCT:
		s += "+vct"
	case noc.MulticastRF:
		s += "+mc"
	}
	return s
}

func (d Design) budget() int {
	if d.ShortcutBudget > 0 {
		return d.ShortcutBudget
	}
	if d.ShortcutWidthBytes > 0 {
		return tech.RFIAggregateBytes / d.ShortcutWidthBytes
	}
	return tech.ShortcutBudget
}

// Build materializes the design into a simulator configuration. For
// Adaptive designs the workload generator `profile` (a fresh instance of
// the workload, same seed as the measured run) is dry-run to collect the
// inter-router frequency matrix that drives application-specific
// shortcut selection; pass nil for non-adaptive designs.
func Build(m *topology.Mesh, d Design, profile traffic.Generator, profileCycles int64) noc.Config {
	cfg := noc.Config{Mesh: m, Width: d.Width, Multicast: d.Multicast}
	if d.ShortcutWidthBytes > 0 {
		cfg.ShortcutWidthBytes = d.ShortcutWidthBytes
	}
	switch d.Kind {
	case Baseline:
		// No shortcut overlay; an "MC only" design still provisions RF
		// receivers at the access points (the paper's MC configuration
		// dedicates one band to multicast with all 50 receivers tuned).
		if d.Multicast == noc.MulticastRF && d.RFRouters > 0 {
			cfg.RFEnabled = m.RFPlacement(d.RFRouters)
		}
	case Static, WireStatic:
		cfg.Shortcuts = StaticShortcuts(m, d.budget())
		cfg.WireShortcuts = d.Kind == WireStatic
	case Adaptive:
		if d.RFRouters == 0 {
			d.RFRouters = 50
		}
		cfg.RFEnabled = m.RFPlacement(d.RFRouters)
		if profile == nil {
			panic("experiments: adaptive design needs a workload profile")
		}
		if profileCycles <= 0 {
			profileCycles = 20000
		}
		freq := traffic.FrequencyMatrix(profile, m.N(), profileCycles)
		cfg.Shortcuts = AdaptiveShortcuts(m, cfg.RFEnabled, freq, d.budget())
	default:
		panic("experiments: unknown design kind")
	}
	// Multicast transmitters sit at the cluster-central banks; their Tx
	// hardware is accounted by Config.RFPortsAt whether or not the bank is
	// in the access-point placement, so RFEnabled stays the placement set
	// (and the receiver count matches the paper: all 50 for MC, 35 for
	// MC+SC).
	return cfg
}

// StaticShortcuts returns the architecture-specific shortcut set
// (Section 3.2.1, Figure 3(b) heuristic).
func StaticShortcuts(m *topology.Mesh, budget int) []shortcut.Edge {
	return shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget:   budget,
		Eligible: m.ShortcutEligible,
	})
}

// AdaptiveShortcuts returns the application-specific shortcut set
// (Section 3.2.2) restricted to RF-enabled routers. Candidates are
// generated with both of the paper's Figure 3 heuristics under the
// F(x,y)*W(x,y) objective -- the region-based alternating selector and
// the permutation-graph greedy -- and the set with the lower weighted
// objective is kept. (The paper found its two heuristics comparable and
// kept the cheaper one; ours differ slightly per workload, so a
// one-APSP comparison buys the better set at negligible cost.)
func AdaptiveShortcuts(m *topology.Mesh, rfEnabled []int, freq [][]int64, budget int) []shortcut.Edge {
	rf := map[int]bool{}
	for _, id := range rfEnabled {
		rf[id] = true
	}
	p := shortcut.Params{
		Budget:   budget,
		Eligible: func(id int) bool { return rf[id] && m.ShortcutEligible(id) },
		Freq:     freq,
		MeshW:    m.W,
		MeshH:    m.H,
	}
	g := m.Graph()
	region := shortcut.SelectRegionBased(g, p)
	greedy := shortcut.SelectGreedyPermutation(g, p)
	cr := graph.WeightedCost(shortcut.Apply(g, region).AllPairs(), freq)
	cg := graph.WeightedCost(shortcut.Apply(g, greedy).AllPairs(), freq)
	if cr <= cg {
		return region
	}
	return greedy
}
