package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/noc"
	"repro/internal/topology"
)

// TestMain doubles as the worker entry point: the pool re-execs this
// test binary with the env var set, exactly how rfsimd re-execs itself
// with -worker. Without the var, tests run normally.
func TestMain(m *testing.M) {
	if os.Getenv("RFSIM_EXP_WORKER") == "1" {
		os.Exit(WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// testWorkerCommand builds a pool config that re-execs this test binary
// as a worker.
func testWorkerPool(t *testing.T, cfg WorkerPoolConfig) *WorkerPool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cfg.Command = []string{exe}
	cfg.Env = append(cfg.Env, "RFSIM_EXP_WORKER=1")
	pool, err := NewWorkerPool(cfg)
	if err != nil {
		t.Fatalf("NewWorkerPool: %v", err)
	}
	t.Cleanup(pool.Close)
	return pool
}

// portablePoint builds one wire-shippable sweep point.
func portablePoint(t *testing.T, seed, cycles int64) SweepPoint {
	t.Helper()
	m := topology.New10x10()
	cfg := noc.Config{Mesh: m}
	gen := GenSpec{Workload: "uniform", Rate: 0.01, Seed: seed}
	opts := Options{Cycles: cycles, DrainCycles: 50000, Rate: 0.01, Seed: seed}
	pt, err := NewPortableSweepPoint(cfg, gen, opts, map[string]string{"config": cfg.Fingerprint()})
	if err != nil {
		t.Fatalf("NewPortableSweepPoint: %v", err)
	}
	return pt
}

// TestWorkerPoolBitIdentical is the isolation tentpole's correctness
// anchor: the same points, supervised in-process and through worker
// processes, must produce byte-identical canonical results.
func TestWorkerPoolBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	pts := []SweepPoint{
		portablePoint(t, 11, 400),
		portablePoint(t, 12, 400),
		portablePoint(t, 13, 400),
	}
	ctx := context.Background()

	inproc, err := Supervise(ctx, SuperviseConfig{Workers: 2, Dir: t.TempDir()}, pts)
	if err != nil {
		t.Fatalf("in-process Supervise: %v", err)
	}
	pool := testWorkerPool(t, WorkerPoolConfig{Workers: 2})
	isolated, err := Supervise(ctx, SuperviseConfig{Workers: 2, Dir: t.TempDir(), Exec: pool}, pts)
	if err != nil {
		t.Fatalf("isolated Supervise: %v", err)
	}
	for i := range pts {
		a, err := MarshalResult(inproc[i].Result)
		if err != nil {
			t.Fatalf("marshal in-process %d: %v", i, err)
		}
		b, err := MarshalResult(isolated[i].Result)
		if err != nil {
			t.Fatalf("marshal isolated %d: %v", i, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("point %d: isolated result differs from in-process", i)
		}
	}
	if st := pool.Stats(); st.JobsCompleted != 3 || st.Crashed != 0 {
		t.Errorf("pool stats = %+v, want 3 completed, 0 crashed", st)
	}
}

// TestWorkerPanicBecomesCrashDump: a panic inside a worker process must
// surface exactly like an in-process panic — failed outcome, Panicked,
// crash dump with the worker's stderr (holding the Go panic trace) and
// process-level evidence.
func TestWorkerPanicBecomesCrashDump(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	pool := testWorkerPool(t, WorkerPoolConfig{
		Workers:  1,
		ChaosJob: func(*PointPayload, string) string { return "panic" },
	})
	pts := []SweepPoint{portablePoint(t, 21, 300)}
	outs, err := Supervise(context.Background(), SuperviseConfig{Dir: dir, Retries: 1, RetryBackoff: time.Millisecond, Exec: pool}, pts)
	if err == nil {
		t.Fatal("Supervise succeeded despite a panicking worker")
	}
	o := outs[0]
	if o.Err == nil || !o.Panicked {
		t.Fatalf("outcome = %+v, want failed and Panicked", o)
	}
	if o.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (retry after crash)", o.Attempts)
	}
	if o.CrashDump == "" {
		t.Fatal("no crash dump written")
	}
	blob, err := os.ReadFile(o.CrashDump)
	if err != nil {
		t.Fatalf("reading crash dump: %v", err)
	}
	var dump CrashDump
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("crash dump not JSON: %v", err)
	}
	if !strings.Contains(dump.Stack, "injected panic") {
		t.Errorf("dump stack does not carry the worker's panic output:\n%s", dump.Stack)
	}
	if dump.Evidence == nil || !dump.Evidence.Worker {
		t.Errorf("dump evidence = %+v, want worker evidence", dump.Evidence)
	}
	if dump.Evidence != nil && dump.Evidence.ExitCode != 2 {
		t.Errorf("evidence exit code = %d, want 2 (Go panic)", dump.Evidence.ExitCode)
	}
	if st := pool.Stats(); st.Crashed < 2 || st.RestartBackoffs < 1 {
		t.Errorf("pool stats = %+v, want >=2 crashes and a restart backoff", st)
	}
}

// TestWorkerOOMIsCrisp: a point whose live heap exceeds the worker
// memory limit must come back as a distinguishable OOM — not a hang,
// not a generic crash.
func TestWorkerOOMIsCrisp(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	pool := testWorkerPool(t, WorkerPoolConfig{
		Workers:  1,
		MemLimit: 64 << 20,
		ChaosJob: func(*PointPayload, string) string { return "alloc" },
	})
	pts := []SweepPoint{portablePoint(t, 31, 300)}
	outs, err := Supervise(context.Background(), SuperviseConfig{Dir: dir, Exec: pool}, pts)
	if err == nil {
		t.Fatal("Supervise succeeded despite an OOMing worker")
	}
	o := outs[0]
	if !o.Panicked || o.CrashDump == "" {
		t.Fatalf("outcome = %+v, want Panicked with a crash dump", o)
	}
	var dump CrashDump
	blob, _ := os.ReadFile(o.CrashDump)
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("crash dump not JSON: %v", err)
	}
	if !strings.Contains(dump.Panic, "memory limit") {
		t.Errorf("dump panic = %q, want a memory-limit reason", dump.Panic)
	}
	if dump.Evidence == nil || dump.Evidence.HeapAlloc == 0 || dump.Evidence.GoMemLimit != 64<<20 {
		t.Errorf("dump evidence = %+v, want child heap accounting and the 64MiB limit", dump.Evidence)
	}
	if st := pool.Stats(); st.OOM < 1 {
		t.Errorf("pool stats = %+v, want an OOM", st)
	}
}

// TestWorkerHeartbeatLossKilled: a worker that stops heartbeating is
// SIGKILLed and the point fails with the heartbeat reason.
func TestWorkerHeartbeatLossKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	pool := testWorkerPool(t, WorkerPoolConfig{
		Workers:         1,
		Heartbeat:       10 * time.Millisecond,
		HeartbeatMisses: 5,
		ChaosJob:        func(*PointPayload, string) string { return "hang" },
	})
	pts := []SweepPoint{portablePoint(t, 41, 300)}
	outs, err := Supervise(context.Background(), SuperviseConfig{Dir: dir, Exec: pool}, pts)
	if err == nil {
		t.Fatal("Supervise succeeded despite a wedged worker")
	}
	o := outs[0]
	if !o.Panicked || o.Err == nil || !strings.Contains(o.Err.Error(), "heartbeat") {
		t.Fatalf("outcome err = %v (Panicked=%v), want a heartbeat-loss failure", o.Err, o.Panicked)
	}
	var dump CrashDump
	blob, _ := os.ReadFile(o.CrashDump)
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("crash dump not JSON: %v", err)
	}
	if dump.Evidence == nil || dump.Evidence.Signal != "killed" {
		t.Errorf("dump evidence = %+v, want signal \"killed\"", dump.Evidence)
	}
	if st := pool.Stats(); st.KilledHeartbeat < 1 {
		t.Errorf("pool stats = %+v, want a heartbeat kill", st)
	}
}

// TestWorkerCancelCheckpoints: cancelling a running isolated point asks
// the child to checkpoint; the partial result comes back Interrupted
// and the checkpoint file exists for the resume.
func TestWorkerCancelCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	dir := t.TempDir()
	pool := testWorkerPool(t, WorkerPoolConfig{Workers: 1})
	pt := portablePoint(t, 51, 5_000_000) // far longer than the timeout
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	spec := CheckpointSpec{Path: filepath.Join(dir, pt.ID+".ckpt"), Every: 1000, Resume: true}
	res, err := pool.Execute(ctx, pt.Payload, pt.Fingerprint, spec)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Execute err = %v, want deadline exceeded", err)
	}
	if !res.Interrupted {
		t.Error("partial result not marked Interrupted")
	}
	if _, serr := os.Stat(spec.Path); serr != nil {
		t.Errorf("no checkpoint saved on graceful cancel: %v", serr)
	}
	if st := pool.Stats(); st.Crashed != 0 {
		t.Errorf("pool stats = %+v: graceful cancel must not count as a crash", st)
	}
}

// TestWorkerMainProtocol drives WorkerMain in-process over pipes: job
// in, heartbeats and an outcome out, clean exit on EOF.
func TestWorkerMainProtocol(t *testing.T) {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan int, 1)
	go func() { done <- WorkerMain(inR, outW, io.Discard) }()

	m := topology.New10x10()
	cfg := noc.Config{Mesh: m}
	job := workerJob{
		Fingerprint: "test",
		Point: PointPayload{
			MeshW: m.W, MeshH: m.H, Config: cfg,
			Gen:  GenSpec{Workload: "uniform", Rate: 0.01, Seed: 9},
			Opts: Options{Cycles: 200, DrainCycles: 50000, Rate: 0.01, Seed: 9},
		},
		HeartbeatMS: 5,
	}
	job.Point.Config.Mesh = nil
	blob, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.WriteFrame(inW, FrameJob, blob); err != nil {
		t.Fatal(err)
	}
	var out workerOutcome
	for {
		kind, payload, err := checkpoint.ReadFrame(outR)
		if err != nil {
			t.Fatalf("reading worker frame: %v", err)
		}
		if kind == FrameHeartbeat {
			continue
		}
		if kind != FrameOutcome {
			t.Fatalf("unexpected frame kind %d", kind)
		}
		if err := json.Unmarshal(payload, &out); err != nil {
			t.Fatalf("outcome not JSON: %v", err)
		}
		break
	}
	if out.Err != "" {
		t.Fatalf("worker outcome error: %s", out.Err)
	}
	if _, err := UnmarshalResult(out.Result); err != nil {
		t.Fatalf("worker result does not round-trip: %v", err)
	}
	inW.Close()
	if code := <-done; code != 0 {
		t.Fatalf("WorkerMain exit code = %d, want 0", code)
	}
}
