package experiments

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// LoadPoint is one point of a load-latency curve.
type LoadPoint struct {
	Rate       float64 // transactions per component per cycle
	AvgLatency float64 // cycles per flit
	Throughput float64 // ejected flits per cycle
	Saturated  bool    // failed to drain (offered > accepted)
}

// LoadCurve is a latency-versus-offered-load sweep for one design, the
// classic NoC characterization: flat near zero load, rising with
// queueing, asymptotic at saturation. RF-I shortcuts shift the curve
// down (fewer hops) and right (bisection relief).
type LoadCurve struct {
	Design string
	Points []LoadPoint
}

// DefaultLoadRates is the sweep grid.
func DefaultLoadRates() []float64 {
	return []float64{0.002, 0.004, 0.008, 0.012, 0.016, 0.020, 0.026, 0.032}
}

// LoadLatency sweeps injection rate for the given designs under one
// pattern. Saturated points report the (censored) latency measured over
// the fixed window.
func LoadLatency(m *topology.Mesh, designs []Design, pat traffic.Pattern, rates []float64, opts Options) []LoadCurve {
	opts = opts.WithDefaults()
	if rates == nil {
		rates = DefaultLoadRates()
	}
	var out []LoadCurve
	for _, d := range designs {
		c := LoadCurve{Design: d.Name()}
		for _, rate := range rates {
			o := opts
			o.Rate = rate
			r := RunDesign(m, d, pat, o)
			c.Points = append(c.Points, LoadPoint{
				Rate:       rate,
				AvgLatency: r.AvgLatency,
				Throughput: r.Stats.Throughput(),
				Saturated:  !r.Drained,
			})
		}
		out = append(out, c)
	}
	return out
}

// SaturationRate returns the highest swept rate that did not saturate
// and kept latency under latencyBound, a robust proxy for saturation
// throughput.
func (c LoadCurve) SaturationRate(latencyBound float64) float64 {
	best := 0.0
	for _, p := range c.Points {
		if !p.Saturated && p.AvgLatency <= latencyBound && p.Rate > best {
			best = p.Rate
		}
	}
	return best
}

// RenderLoadCurves draws the sweep.
func RenderLoadCurves(curves []LoadCurve) string {
	t := stats.NewTable("design", "rate", "latency/flit", "flits/cycle", "saturated")
	for _, c := range curves {
		for _, p := range c.Points {
			sat := ""
			if p.Saturated {
				sat = "yes"
			}
			t.AddRow(c.Design, fmt.Sprintf("%.3f", p.Rate),
				fmt.Sprintf("%.1f", p.AvgLatency),
				fmt.Sprintf("%.2f", p.Throughput), sat)
		}
	}
	return t.String()
}

// LoadCurveDesigns are the standard comparison set at a given width.
func LoadCurveDesigns(w tech.LinkWidth) []Design {
	return []Design{
		{Kind: Baseline, Width: w},
		{Kind: Static, Width: w},
		{Kind: Adaptive, RFRouters: 50, Width: w},
	}
}
