package experiments

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/shortcut"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ScalingRow is one mesh size in the scaling study.
type ScalingRow struct {
	Side    int // mesh is Side x Side
	Routers int
	Cores   int

	// Ratios versus the same-size 16 B baseline.
	Baseline4BLatency float64
	Adaptive4BLatency float64
	Adaptive4BPower   float64
	Adaptive4BArea    float64

	// MeanHops on the 16 B baseline, showing why RF-I matters more as
	// meshes grow.
	MeanHops float64
}

// ScalingStudy generalizes the paper's headline comparison (16 B baseline
// vs adaptive 4 B overlay) across mesh sizes, the scaling trajectory the
// paper's introduction motivates ("as CMPs scale to tens or hundreds of
// cores"). The RF-I aggregate stays fixed at 256 B/cycle (16 shortcuts),
// so the study also shows the fixed overlay budget diluting on larger
// meshes. Uniform traffic at iso per-link load; access points are the
// density-2 stagger.
func ScalingStudy(sizes []int, opts Options) []ScalingRow {
	opts = opts.WithDefaults()
	out := make([]ScalingRow, len(sizes))
	forEach(len(sizes), func(i int) {
		side := sizes[i]
		m := topology.New(side, side)
		row := ScalingRow{Side: side, Routers: m.N(), Cores: len(m.Cores())}

		// Iso-load scaling: uniform traffic's per-link load grows with the
		// mesh side (more components and longer paths over a bisection
		// that only grows linearly), so the per-component rate is scaled
		// by 10/side to keep link utilization comparable across sizes.
		rate := opts.Rate * 10.0 / float64(side)
		gen := func() traffic.Generator {
			return traffic.NewProbabilistic(m, traffic.Uniform, rate, opts.Seed)
		}
		b16 := Run(noc.Config{Mesh: m, Width: tech.Width16B}, gen(), opts)
		b4 := Run(noc.Config{Mesh: m, Width: tech.Width4B}, gen(), opts)

		rf := m.RFStagger(2)
		freq := traffic.FrequencyMatrix(gen(), m.N(), opts.ProfileCycles)
		edges := scaledAdaptiveShortcuts(m, rf, freq, tech.ShortcutBudget)
		a4 := Run(noc.Config{
			Mesh: m, Width: tech.Width4B, Shortcuts: edges, RFEnabled: rf,
		}, gen(), opts)

		area16 := power.ComputeArea(noc.New(noc.Config{Mesh: m, Width: tech.Width16B}).Config())

		row.Baseline4BLatency = b4.AvgLatency / b16.AvgLatency
		row.Adaptive4BLatency = a4.AvgLatency / b16.AvgLatency
		row.Adaptive4BPower = a4.PowerW / b16.PowerW
		row.Adaptive4BArea = a4.AreaMM2 / area16.Total()
		row.MeanHops = b16.Stats.AvgHops()
		out[i] = row
	})
	return out
}

// scaledAdaptiveShortcuts is AdaptiveShortcuts without the 10x10-only
// placement helpers: the region-based selector already generalizes; the
// permutation-graph alternative is skipped above 12x12 where its O(BV^4)
// cost bites.
func scaledAdaptiveShortcuts(m *topology.Mesh, rfEnabled []int, freq [][]int64, budget int) []shortcut.Edge {
	if m.N() <= 144 {
		return AdaptiveShortcuts(m, rfEnabled, freq, budget)
	}
	rf := map[int]bool{}
	for _, id := range rfEnabled {
		rf[id] = true
	}
	return shortcut.SelectRegionBased(m.Graph(), shortcut.Params{
		Budget:   budget,
		Eligible: func(id int) bool { return rf[id] && m.ShortcutEligible(id) },
		Freq:     freq,
		MeshW:    m.W,
		MeshH:    m.H,
	})
}

// RenderScaling draws the scaling table.
func RenderScaling(rows []ScalingRow) string {
	t := stats.NewTable("mesh", "cores", "mean hops",
		"4B lat", "adaptive-4B lat", "adaptive-4B pow", "adaptive-4B area")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Side, r.Side),
			fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.2f", r.MeanHops),
			fmt.Sprintf("%.3f", r.Baseline4BLatency),
			fmt.Sprintf("%.3f", r.Adaptive4BLatency),
			fmt.Sprintf("%.3f", r.Adaptive4BPower),
			fmt.Sprintf("%.3f", r.Adaptive4BArea))
	}
	return t.String()
}
