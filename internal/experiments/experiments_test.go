package experiments

import (
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// fastOpts keeps unit tests quick; the shapes asserted here are coarse
// enough to be stable at this budget.
func fastOpts() Options {
	return Options{Cycles: 6000, ProfileCycles: 6000, Seed: 1}
}

func TestDesignNames(t *testing.T) {
	cases := []struct {
		d    Design
		want string
	}{
		{Design{Kind: Baseline, Width: tech.Width16B}, "baseline-16B"},
		{Design{Kind: Static, Width: tech.Width8B}, "static-8B"},
		{Design{Kind: WireStatic, Width: tech.Width16B}, "wire-static-16B"},
		{Design{Kind: Adaptive, RFRouters: 50, Width: tech.Width4B}, "adaptive50-4B"},
		{Design{Kind: Baseline, Width: tech.Width16B, Multicast: noc.MulticastVCT}, "baseline-16B+vct"},
		{Design{Kind: Adaptive, RFRouters: 50, Width: tech.Width16B, Multicast: noc.MulticastRF}, "adaptive50-16B+mc"},
	}
	for _, c := range cases {
		if got := c.d.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestStaticShortcutsRespectConstraints(t *testing.T) {
	m := topology.New10x10()
	edges := StaticShortcuts(m, tech.ShortcutBudget)
	if len(edges) != tech.ShortcutBudget {
		t.Fatalf("selected %d, want %d", len(edges), tech.ShortcutBudget)
	}
	err := shortcut.Validate(edges, shortcut.Params{
		Budget: tech.ShortcutBudget, Eligible: m.ShortcutEligible,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveShortcutsUseOnlyRFRouters(t *testing.T) {
	m := topology.New10x10()
	gen := traffic.NewProbabilistic(m, traffic.Hotspot2, 0, 1)
	freq := traffic.FrequencyMatrix(gen, m.N(), 8000)
	rf := m.RFPlacement(50)
	rfSet := map[int]bool{}
	for _, id := range rf {
		rfSet[id] = true
	}
	edges := AdaptiveShortcuts(m, rf, freq, tech.ShortcutBudget)
	if len(edges) == 0 {
		t.Fatal("no shortcuts selected")
	}
	for _, e := range edges {
		if !rfSet[e.From] || !rfSet[e.To] {
			t.Errorf("edge %v touches a non-RF router", e)
		}
	}
}

func TestBuildMCSCSplitsReceivers(t *testing.T) {
	// The MC+SC configuration: 15 shortcuts, remaining receivers tuned to
	// the multicast band.
	m := topology.New10x10()
	profile := traffic.NewProbabilistic(m, traffic.Uniform, 0, 1)
	cfg := Build(m, Design{
		Kind: Adaptive, RFRouters: 50, Width: tech.Width16B,
		Multicast: noc.MulticastRF, ShortcutBudget: 15,
	}, profile, 5000)
	if len(cfg.Shortcuts) != 15 {
		t.Errorf("shortcuts = %d, want 15", len(cfg.Shortcuts))
	}
	n := noc.New(cfg)
	rx := n.Config().MulticastReceivers
	// 50 APs minus 15 shortcut destinations = 35 multicast receivers
	// (shortcut Rx routers are tuned to their shortcut bands).
	if len(rx) != 35 {
		t.Errorf("multicast receivers = %d, want 35", len(rx))
	}
}

func TestRunDesignProducesSaneResult(t *testing.T) {
	m := topology.New10x10()
	r := RunDesign(m, Design{Kind: Baseline, Width: tech.Width16B}, traffic.Uniform, fastOpts())
	if !r.Drained {
		t.Fatal("run did not drain")
	}
	if r.AvgLatency < 10 || r.AvgLatency > 200 {
		t.Errorf("implausible latency %v", r.AvgLatency)
	}
	if r.PowerW < 1 || r.PowerW > 30 {
		t.Errorf("implausible power %v", r.PowerW)
	}
	if r.Workload != "Uniform" || r.Design != "baseline-16B" {
		t.Errorf("labels wrong: %q %q", r.Workload, r.Design)
	}
}

func TestShapeStaticBeatsBaselineCostsPower(t *testing.T) {
	m := topology.New10x10()
	opts := fastOpts()
	base := RunDesign(m, Design{Kind: Baseline, Width: tech.Width16B}, traffic.Uniform, opts)
	st := RunDesign(m, Design{Kind: Static, Width: tech.Width16B}, traffic.Uniform, opts)
	if st.AvgLatency >= base.AvgLatency {
		t.Errorf("static latency %v !< baseline %v", st.AvgLatency, base.AvgLatency)
	}
	if st.PowerW <= base.PowerW {
		t.Errorf("static power %v !> baseline %v", st.PowerW, base.PowerW)
	}
}

func TestShapeBandwidthReduction(t *testing.T) {
	// The paper's Figure 8 shape on one trace: narrower mesh means less
	// power and more latency; the adaptive overlay recovers most of the
	// latency while keeping most of the savings.
	m := topology.New10x10()
	opts := fastOpts()
	b16 := RunDesign(m, Design{Kind: Baseline, Width: tech.Width16B}, traffic.Uniform, opts)
	b4 := RunDesign(m, Design{Kind: Baseline, Width: tech.Width4B}, traffic.Uniform, opts)
	a4 := RunDesign(m, Design{Kind: Adaptive, RFRouters: 50, Width: tech.Width4B}, traffic.Uniform, opts)
	if b4.PowerW >= 0.5*b16.PowerW {
		t.Errorf("4B power %v not well below 16B %v", b4.PowerW, b16.PowerW)
	}
	if b4.AvgLatency <= b16.AvgLatency {
		t.Errorf("4B latency %v should exceed 16B %v", b4.AvgLatency, b16.AvgLatency)
	}
	if a4.AvgLatency >= b4.AvgLatency {
		t.Errorf("adaptive 4B latency %v should beat baseline 4B %v", a4.AvgLatency, b4.AvgLatency)
	}
	if a4.PowerW >= 0.6*b16.PowerW {
		t.Errorf("adaptive 4B power %v should stay well below 16B baseline %v", a4.PowerW, b16.PowerW)
	}
}

func TestTable2RowsMatchPaper(t *testing.T) {
	m := topology.New10x10()
	rows := Table2(m)
	want := map[string]float64{
		"Mesh Baseline (16B)":      30.29,
		"Mesh Baseline (8B)":       9.38,
		"Mesh Baseline (4B)":       3.25,
		"Mesh (16B) Arch-Specific": 32.65,
		"Mesh (16B) + 50 RF-I APs": 37.66,
		"Mesh (8B) Arch-Specific":  10.41,
		"Mesh (8B) + 50 RF-I APs":  12.60,
		"Mesh (4B) Arch-Specific":  3.92,
		"Mesh (4B) + 50 RF-I APs":  5.34,
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Design]
		if !ok {
			t.Errorf("unexpected row %q", r.Design)
			continue
		}
		if diff := r.Total - w; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s total = %.2f, want %.2f", r.Design, r.Total, w)
		}
	}
	if !strings.Contains(RenderTable2(rows), "Mesh Baseline (16B)") {
		t.Error("render missing rows")
	}
}

func TestFig1HistogramsContrast(t *testing.T) {
	m := topology.New10x10()
	r := Fig1(m, fastOpts())
	if len(r.Apps) != 5 {
		t.Fatalf("apps = %d, want 5", len(r.Apps))
	}
	frac1 := func(h []int64) float64 {
		var tot, one int64
		for d := 1; d < len(h); d++ {
			tot += h[d]
		}
		one = h[1]
		return float64(one) / float64(tot)
	}
	// bodytrack (index 1) must be far more single-hop dominated than
	// x264 (index 0), the paper's Figure 1 contrast.
	if frac1(r.Histograms[1]) <= 1.5*frac1(r.Histograms[0]) {
		t.Errorf("bodytrack 1-hop share %.2f vs x264 %.2f: contrast missing",
			frac1(r.Histograms[1]), frac1(r.Histograms[0]))
	}
	if !strings.Contains(r.Render(), "bodytrack") {
		t.Error("render missing app names")
	}
}

func TestAblationHeuristicsComparable(t *testing.T) {
	m := topology.New10x10()
	perm, maxc := AblationHeuristics(m, 8)
	base := m.Graph().TotalPairCost()
	if perm >= base || maxc >= base {
		t.Fatal("heuristics did not improve the objective")
	}
	// The paper found them comparable; permutation optimizes the
	// objective directly so it must not lose by much.
	if float64(perm) > 1.05*float64(maxc) {
		t.Errorf("permutation (%d) much worse than max-cost (%d)", perm, maxc)
	}
}

func TestAdaptiveCacheReusesSelection(t *testing.T) {
	m := topology.New10x10()
	opts := fastOpts()
	d16 := Design{Kind: Adaptive, RFRouters: 50, Width: tech.Width16B}
	d4 := Design{Kind: Adaptive, RFRouters: 50, Width: tech.Width4B}
	cfg16 := buildCached(m, d16, func() traffic.Generator {
		return traffic.NewProbabilistic(m, traffic.Hotspot1, opts.Rate, opts.Seed)
	}, opts.WithDefaults())
	cfg4 := buildCached(m, d4, func() traffic.Generator {
		return traffic.NewProbabilistic(m, traffic.Hotspot1, opts.Rate, opts.Seed)
	}, opts.WithDefaults())
	if len(cfg16.Shortcuts) != len(cfg4.Shortcuts) {
		t.Fatal("cached selections differ in size")
	}
	for i := range cfg16.Shortcuts {
		if cfg16.Shortcuts[i] != cfg4.Shortcuts[i] {
			t.Fatal("cached selections differ across widths")
		}
	}
}
