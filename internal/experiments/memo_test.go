package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/sweepcache"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// randomMemoConfig draws a random valid design point: width, VC shape,
// shortcut overlay and fault knobs all vary, so the property test sweeps
// a representative slice of the config space rather than one corner.
func randomMemoConfig(rng *rand.Rand, m *topology.Mesh) (noc.Config, traffic.Pattern, Options) {
	widths := []tech.LinkWidth{tech.Width4B, tech.Width8B, tech.Width16B}
	cfg := noc.Config{
		Mesh:        m,
		Width:       widths[rng.Intn(len(widths))],
		VCsPerClass: 2 + rng.Intn(3),
		BufDepth:    2 + rng.Intn(3),
	}
	if rng.Intn(2) == 0 {
		n := m.N()
		seen := map[[2]int]bool{}
		for len(cfg.Shortcuts) < 2+rng.Intn(3) {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to || seen[[2]int{from, to}] {
				continue
			}
			seen[[2]int{from, to}] = true
			cfg.Shortcuts = append(cfg.Shortcuts, shortcut.Edge{From: from, To: to})
		}
	}
	pats := traffic.Patterns()
	pat := pats[rng.Intn(len(pats))]
	opts := Options{
		Cycles:      400 + rng.Int63n(400),
		DrainCycles: 50000,
		Rate:        0.004 + rng.Float64()*0.006,
		Seed:        1 + rng.Int63n(1000),
	}
	return cfg, pat, opts
}

// TestMemoizedResultBitIdentical is the cache-correctness property: for
// randomized valid configs, the cached canonical bytes of a memoized
// point are bit-identical to a fresh uncached run with the same
// fingerprint + seed; and mutating one config field changes the
// fingerprint and misses the cache.
func TestMemoizedResultBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	m := topology.New10x10()
	rng := rand.New(rand.NewSource(20260808))

	for trial := 0; trial < 5; trial++ {
		cfg, pat, opts := randomMemoConfig(rng, m)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v", trial, err)
		}
		mkGen := func() traffic.Generator {
			return traffic.NewProbabilistic(m, pat, opts.Rate, opts.Seed)
		}
		cache := sweepcache.New(0)
		pt := NewSweepPoint(fmt.Sprintf("trial-%d", trial), cfg, mkGen, opts, nil)

		outs, err := Supervise(context.Background(), SuperviseConfig{
			Workers: 1, Cache: cache,
		}, []SweepPoint{pt})
		if err != nil {
			t.Fatalf("trial %d: supervised run: %v", trial, err)
		}
		if outs[0].Cached {
			t.Fatalf("trial %d: first run reported Cached", trial)
		}

		cachedBlob, ok := cache.Get(pt.Fingerprint)
		if !ok {
			t.Fatalf("trial %d: result not cached under fingerprint %s", trial, pt.Fingerprint)
		}

		// Fresh, cache-free run of the same point.
		fresh, err := RunCheckpointed(context.Background(), cfg, mkGen(), opts, CheckpointSpec{})
		if err != nil {
			t.Fatalf("trial %d: fresh run: %v", trial, err)
		}
		freshBlob, err := MarshalResult(fresh)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		if !bytes.Equal(cachedBlob, freshBlob) {
			t.Errorf("trial %d: cached bytes diverge from a fresh run\ncached: %s\nfresh:  %s",
				trial, cachedBlob, freshBlob)
		}

		// A second supervised run must be a pure hit with the identical
		// Result.
		outs2, err := Supervise(context.Background(), SuperviseConfig{
			Workers: 1, Cache: cache,
		}, []SweepPoint{pt})
		if err != nil {
			t.Fatalf("trial %d: second run: %v", trial, err)
		}
		if !outs2[0].Cached || outs2[0].Attempts != 0 {
			t.Errorf("trial %d: repeat run not served from cache (cached=%v attempts=%d)",
				trial, outs2[0].Cached, outs2[0].Attempts)
		}
		if !reflect.DeepEqual(outs2[0].Result, outs[0].Result) {
			t.Errorf("trial %d: cached Result differs from computed Result", trial)
		}

		// Mutate one config field: new fingerprint, cache miss.
		mutated := cfg
		mutated.BufDepth = cfg.BufDepth + 1
		mutFP := PointFingerprint(mutated, mkGen().Name(), opts)
		if mutFP == pt.Fingerprint {
			t.Fatalf("trial %d: BufDepth mutation kept fingerprint %s", trial, mutFP)
		}
		if _, ok := cache.Get(mutFP); ok {
			t.Errorf("trial %d: mutated fingerprint unexpectedly present in cache", trial)
		}

		// Mutating only the seed must change the fingerprint too.
		seedOpts := opts
		seedOpts.Seed = opts.Seed + 1
		if PointFingerprint(cfg, mkGen().Name(), seedOpts) == pt.Fingerprint {
			t.Errorf("trial %d: seed change kept the fingerprint", trial)
		}
	}
}

// TestSuperviseSingleFlight is the concurrency regression for
// experiments.Supervise: 100 goroutines submitting the same point
// concurrently through a shared cache must simulate it exactly once.
func TestSuperviseSingleFlight(t *testing.T) {
	m := topology.New10x10()
	opts := Options{Cycles: 600, DrainCycles: 50000, Rate: 0.008, Seed: 11}
	cfg := noc.Config{Mesh: m, Shortcuts: []shortcut.Edge{{From: 3, To: 96}}}
	mkGen := func() traffic.Generator {
		return traffic.NewProbabilistic(m, traffic.Uniform, opts.Rate, opts.Seed)
	}
	fp := PointFingerprint(cfg, mkGen().Name(), opts)

	var runs atomic.Int64
	mkPoint := func() SweepPoint {
		return SweepPoint{
			ID:          fp,
			Fingerprint: fp,
			Run: func(ctx context.Context, spec CheckpointSpec) (Result, error) {
				runs.Add(1)
				return RunCheckpointed(ctx, cfg, mkGen(), opts, spec)
			},
		}
	}

	cache := sweepcache.New(0)
	const N = 100
	var wg sync.WaitGroup
	outcomes := make([]PointOutcome, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs, err := Supervise(context.Background(), SuperviseConfig{
				Workers: 1, Cache: cache, RetryBackoff: time.Millisecond,
			}, []SweepPoint{mkPoint()})
			errs[i] = err
			outcomes[i] = outs[0]
		}(i)
	}
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("instrumented run counter = %d, want exactly 1 under %d concurrent submissions", got, N)
	}
	computed := 0
	var want Result
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		o := outcomes[i]
		if o.Err != nil {
			t.Fatalf("submission %d outcome: %v", i, o.Err)
		}
		if !o.Cached {
			computed++
			want = o.Result
		}
		if o.Fingerprint != fp {
			t.Errorf("submission %d fingerprint %q, want %q", i, o.Fingerprint, fp)
		}
	}
	if computed != 1 {
		t.Fatalf("%d submissions computed, want exactly 1", computed)
	}
	for i := 0; i < N; i++ {
		if !reflect.DeepEqual(outcomes[i].Result, want) {
			t.Fatalf("submission %d result diverges from the computed one", i)
		}
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Hits+s.Joins != N-1 {
		t.Errorf("cache stats %+v, want 1 miss and %d hits+joins", s, N-1)
	}
}

// TestSuperviseRecoversCorruptCacheEntry: a cached result whose bytes
// rot must degrade to a recompute, not a failed point. The poisoned
// entry is invalidated, the point re-simulated, and the fresh result is
// bit-identical to the original; the outcome is marked Recovered.
func TestSuperviseRecoversCorruptCacheEntry(t *testing.T) {
	m := topology.New10x10()
	opts := Options{Cycles: 600, DrainCycles: 50000, Rate: 0.008, Seed: 23}
	cfg := noc.Config{Mesh: m, Shortcuts: []shortcut.Edge{{From: 3, To: 96}}}
	mkGen := func() traffic.Generator {
		return traffic.NewProbabilistic(m, traffic.Uniform, opts.Rate, opts.Seed)
	}
	fp := PointFingerprint(cfg, mkGen().Name(), opts)

	var runs atomic.Int64
	pt := SweepPoint{
		ID:          fp,
		Fingerprint: fp,
		Run: func(ctx context.Context, spec CheckpointSpec) (Result, error) {
			runs.Add(1)
			return RunCheckpointed(ctx, cfg, mkGen(), opts, spec)
		},
	}
	cache := sweepcache.New(0)
	sc := SuperviseConfig{Workers: 1, Cache: cache, RetryBackoff: time.Millisecond}

	outs, err := Supervise(context.Background(), sc, []SweepPoint{pt})
	if err != nil || outs[0].Err != nil {
		t.Fatalf("priming run: %v / %v", err, outs[0].Err)
	}
	want := outs[0].Result

	if !cache.Corrupt(fp) {
		t.Fatal("priming run left no cache entry to corrupt")
	}
	outs, err = Supervise(context.Background(), sc, []SweepPoint{pt})
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	o := outs[0]
	if o.Err != nil {
		t.Fatalf("corrupt cache entry failed the point: %v", o.Err)
	}
	if !o.Recovered {
		t.Error("outcome not marked Recovered")
	}
	if !reflect.DeepEqual(o.Result, want) {
		t.Error("recovered result diverges from the original")
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("simulation ran %d times, want 2 (prime + recovery)", got)
	}

	// Third submission: the reinserted entry is healthy again.
	outs, _ = Supervise(context.Background(), sc, []SweepPoint{pt})
	if o := outs[0]; o.Err != nil || !o.Cached || o.Recovered {
		t.Errorf("post-recovery hit: err=%v cached=%v recovered=%v, want clean hit", o.Err, o.Cached, o.Recovered)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("post-recovery hit re-ran the simulation (%d runs)", got)
	}
}

// TestSweepPointCost: NewSweepPoint carries the admission-time cost
// estimate, and the estimate scales with the requested window.
func TestSweepPointCost(t *testing.T) {
	small := Options{Cycles: 1000}.EstimatedCycles()
	big := Options{Cycles: 1_000_000}.EstimatedCycles()
	if small <= 1000 {
		t.Errorf("estimate %d for 1000 cycles should exceed the injection window (drain allowance)", small)
	}
	if big <= small {
		t.Errorf("estimate did not scale: %d (big) vs %d (small)", big, small)
	}
	// The drain allowance is bounded by the real drain budget.
	tight := Options{Cycles: 1_000_000, DrainCycles: 10}.EstimatedCycles()
	if tight != 1_000_010 {
		t.Errorf("estimate %d, want 1000010 (drain allowance clamped to DrainCycles)", tight)
	}

	m := topology.New10x10()
	opts := Options{Cycles: 700, Rate: 0.008, Seed: 5}
	cfg := noc.Config{Mesh: m}
	mkGen := func() traffic.Generator {
		return traffic.NewProbabilistic(m, traffic.Uniform, opts.Rate, opts.Seed)
	}
	pt := NewSweepPoint("p", cfg, mkGen, opts, nil)
	if pt.Cost != opts.EstimatedCycles() {
		t.Errorf("SweepPoint.Cost = %d, want %d", pt.Cost, opts.EstimatedCycles())
	}
}

// TestSuperviseFailureCarriesFingerprint: the partial-outcome error must
// name the failing point's fingerprint, not just its position.
func TestSuperviseFailureCarriesFingerprint(t *testing.T) {
	pt := SweepPoint{
		ID:          "doomed",
		Fingerprint: "cafe0123cafe0123cafe0123cafe0123",
		Run: func(ctx context.Context, spec CheckpointSpec) (Result, error) {
			return Result{}, fmt.Errorf("synthetic failure")
		},
	}
	_, err := Supervise(context.Background(), SuperviseConfig{
		Workers: 1, RetryBackoff: time.Millisecond,
	}, []SweepPoint{pt})
	if err == nil {
		t.Fatal("Supervise returned nil error for a failing point")
	}
	if !strings.Contains(err.Error(), "doomed") || !strings.Contains(err.Error(), pt.Fingerprint) {
		t.Errorf("partial-outcome error %q does not carry the point ID and fingerprint", err)
	}
}

// TestSuperviseOnOutcomeStreams: the streaming callback fires exactly
// once per point, index-aligned, with the settled outcome.
func TestSuperviseOnOutcomeStreams(t *testing.T) {
	m := topology.New10x10()
	opts := Options{Cycles: 300, DrainCycles: 50000, Rate: 0.008, Seed: 3}
	var pts []SweepPoint
	for i := 0; i < 4; i++ {
		o := opts
		o.Seed = int64(i + 1)
		mk := func() traffic.Generator {
			return traffic.NewProbabilistic(m, traffic.Uniform, o.Rate, o.Seed)
		}
		pts = append(pts, NewSweepPoint(fmt.Sprintf("pt-%d", i), noc.Config{Mesh: m}, mk, o, nil))
	}

	var mu sync.Mutex
	got := map[int]PointOutcome{}
	outs, err := Supervise(context.Background(), SuperviseConfig{
		Workers: 2,
		OnOutcome: func(i int, o PointOutcome) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[i]; dup {
				t.Errorf("OnOutcome fired twice for index %d", i)
			}
			got[i] = o
		},
	}, pts)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	if len(got) != len(pts) {
		t.Fatalf("OnOutcome fired for %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i].ID != outs[i].ID {
			t.Errorf("index %d: streamed ID %q != outcome ID %q", i, got[i].ID, outs[i].ID)
		}
	}
}
