package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/traffic"
)

// ErrResume wraps failures to load an existing checkpoint file (corrupt,
// truncated, or taken under a different config or snapshot version).
// Callers that can afford to lose the saved progress may delete the file
// and start fresh; the supervisor does exactly that.
var ErrResume = errors.New("experiments: checkpoint resume failed")

// CheckpointSpec configures periodic state persistence for one run.
// The zero value disables checkpointing entirely.
type CheckpointSpec struct {
	// Path is the checkpoint file. Empty disables saving and resuming.
	Path string

	// Every is the auto-checkpoint interval in cycles. Zero or negative
	// saves only on interruption (context cancellation), never mid-run.
	Every int64

	// Resume, when set, restores from Path if the file exists; a missing
	// file starts fresh. A load failure returns an error wrapping
	// ErrResume.
	Resume bool

	// Extra names additional state (beyond the network, the generator and
	// the run position) to carry in the checkpoint — e.g. a fault
	// injector's schedule cursor. Section names must not collide with
	// "run", "network" or "generator".
	Extra []checkpoint.Part

	// OnNetwork, when non-nil, receives the network right after
	// construction (and after a resume restore). The supervisor uses it to
	// capture state for crash dumps; tests use it to attach probes.
	OnNetwork func(*noc.Network)

	// Exec, when non-nil, asks portable sweep points to dispatch this
	// attempt through the executor (a worker-process pool) instead of
	// running in the calling goroutine. The supervisor threads it from
	// SuperviseConfig.Exec; RunCheckpointed itself ignores it, so wrappers
	// composed around SweepPoint.Run see it pass through unchanged.
	Exec Executor
}

// Run phases, serialized in the "run" checkpoint section.
const (
	phaseInject byte = iota
	phaseDrain
	phaseDone
)

// runState is the position of a run, independent of the network clock:
// tick counts generator ticks completed, which lags Network.Now whenever
// a reconfiguration stalls the network mid-run (Reconfigure steps it
// internally), so neither can be derived from the other.
type runState struct {
	phase     byte
	tick      int64
	drainUsed int64
	drained   bool
}

const runStateVersion = 1

// CheckpointState implements checkpoint.State.
func (rs *runState) CheckpointState() ([]byte, error) {
	e := checkpoint.NewEncoder()
	e.Byte(runStateVersion)
	e.Byte(rs.phase)
	e.I64(rs.tick)
	e.I64(rs.drainUsed)
	e.Bool(rs.drained)
	return e.Bytes()
}

// RestoreCheckpointState implements checkpoint.State.
func (rs *runState) RestoreCheckpointState(data []byte) error {
	d := checkpoint.NewDecoder(data)
	if v := d.Byte(); d.Err() == nil && v != runStateVersion {
		return fmt.Errorf("experiments: unsupported run-state version %d (want %d)", v, runStateVersion)
	}
	phase := d.Byte()
	tick := d.I64()
	drainUsed := d.I64()
	drained := d.Bool()
	if err := d.Finish(); err != nil {
		return err
	}
	if phase > phaseDone {
		return fmt.Errorf("experiments: unknown run phase %d", phase)
	}
	if tick < 0 || drainUsed < 0 {
		return fmt.Errorf("experiments: negative run position (tick %d, drain %d)", tick, drainUsed)
	}
	rs.phase = phase
	rs.tick = tick
	rs.drainUsed = drainUsed
	rs.drained = drained
	return nil
}

// checkpointParts assembles the part list for one run. The generator
// must be checkpointable when persistence is on.
func checkpointParts(n *noc.Network, gen traffic.Generator, rs *runState, spec CheckpointSpec) ([]checkpoint.Part, error) {
	genState, ok := gen.(checkpoint.State)
	if !ok {
		return nil, fmt.Errorf("experiments: generator %s does not support checkpointing", gen.Name())
	}
	parts := []checkpoint.Part{
		{Name: "run", State: rs},
		{Name: "network", State: n},
		{Name: "generator", State: genState},
	}
	for _, p := range spec.Extra {
		switch p.Name {
		case "run", "network", "generator":
			return nil, fmt.Errorf("experiments: extra checkpoint part %q collides with a reserved section", p.Name)
		}
		parts = append(parts, p)
	}
	return parts, nil
}

// RunCheckpointed is RunObserved with cooperative cancellation and
// periodic state persistence: the whole simulation (network, generator,
// run position, any Extra parts) is saved to spec.Path every spec.Every
// cycles and on interruption, and a run resumed from such a checkpoint
// finishes with exactly the statistics of an uninterrupted one.
//
// On context cancellation the partial Result (Interrupted set) is
// returned together with the context's error; everything else that goes
// wrong — invalid config, unserializable generator, checkpoint I/O —
// returns a zero Result and the error.
func RunCheckpointed(ctx context.Context, cfg noc.Config, gen traffic.Generator, opts Options, spec CheckpointSpec, observers ...noc.Observer) (Result, error) {
	opts = opts.WithDefaults()
	n, err := noc.NewChecked(cfg)
	if err != nil {
		return Result{}, err
	}
	rs := &runState{}
	var parts []checkpoint.Part
	if spec.Path != "" {
		if parts, err = checkpointParts(n, gen, rs, spec); err != nil {
			return Result{}, err
		}
	}

	if spec.Resume && spec.Path != "" {
		if _, statErr := os.Stat(spec.Path); statErr == nil {
			if err := checkpoint.LoadFile(spec.Path, parts...); err != nil {
				return Result{}, fmt.Errorf("%w: %v", ErrResume, err)
			}
		}
	}

	// Observers attach after a potential restore; they see only the
	// remainder of the run (a documented limitation — observer state is
	// not checkpointed).
	var rec *obs.LatencyRecorder
	if opts.Histograms {
		rec = obs.NewLatencyRecorder()
		n.AttachObserver(rec)
	}
	if opts.Check || testing.Testing() {
		n.AttachObserver(obs.NewInvariantCheckerForDrain(opts.DrainCycles))
	}
	for _, o := range observers {
		n.AttachObserver(o)
	}
	if spec.OnNetwork != nil {
		spec.OnNetwork(n)
	}

	save := func() error {
		if spec.Path == "" {
			return nil
		}
		return checkpoint.SaveFile(spec.Path, parts...)
	}
	interrupted := func() (Result, error) {
		cause := ctx.Err()
		if err := save(); err != nil {
			return Result{}, errors.Join(cause, err)
		}
		r := buildResult(n, gen, cfg, drainReport(n, rs), rec)
		r.Interrupted = true
		return r, cause
	}

	for rs.phase == phaseInject {
		if rs.tick >= opts.Cycles {
			rs.phase = phaseDrain
			break
		}
		if rs.tick%256 == 0 && ctx.Err() != nil {
			return interrupted()
		}
		gen.Tick(rs.tick, n.Inject)
		n.Step()
		rs.tick++
		if spec.Every > 0 && rs.tick%spec.Every == 0 {
			if err := save(); err != nil {
				return Result{}, err
			}
		}
	}
	for rs.phase == phaseDrain {
		if n.InFlight() == 0 || rs.drainUsed >= opts.DrainCycles {
			rs.drained = n.InFlight() == 0
			rs.phase = phaseDone
			break
		}
		if rs.drainUsed%256 == 0 && ctx.Err() != nil {
			return interrupted()
		}
		n.Step()
		rs.drainUsed++
		if spec.Every > 0 && rs.drainUsed%spec.Every == 0 {
			if err := save(); err != nil {
				return Result{}, err
			}
		}
	}
	if err := save(); err != nil {
		return Result{}, err
	}
	return buildResult(n, gen, cfg, drainReport(n, rs), rec), nil
}

// drainReport reconstructs the drain post-mortem for a checkpointed run
// (whose drain loop lives here, not in Network.DrainWithReport).
func drainReport(n *noc.Network, rs *runState) noc.DrainReport {
	rep := noc.DrainReport{Drained: rs.drained, CyclesUsed: rs.drainUsed}
	if !rs.drained {
		rep.Stranded = n.InFlight()
		if rep.Stranded > 0 {
			rep.OldestHeadAge = n.Audit().OldestHeadAge
		}
	}
	return rep
}

// buildResult computes the measurement record from a finished (or
// interrupted) network.
func buildResult(n *noc.Network, gen traffic.Generator, cfg noc.Config, drain noc.DrainReport, rec *obs.LatencyRecorder) Result {
	s := n.Stats()
	b := power.Compute(n.Config(), s)
	a := power.ComputeArea(n.Config())
	r := Result{
		Workload:   gen.Name(),
		Design:     cfg.Width.String(),
		AvgLatency: s.AvgFlitLatency(),
		PowerW:     b.Total(),
		AreaMM2:    a.Total(),
		Stats:      s,
		Breakdown:  b,
		Area:       a,
		Drained:    drain.Drained,
		Drain:      drain,
	}
	if rec != nil {
		r.PacketLatencyDist = rec.Packets.Summary()
		r.FlitLatencyDist = rec.Flits.Summary()
	}
	return r
}
