package experiments

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/shortcut"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Adaptive shortcut sets depend on the workload profile and the
// access-point placement but not on the link width, so sweeps across
// widths (Figures 8 and 10) reuse one selection. The cache key covers
// everything selection consumes.
var (
	adaptiveCacheMu sync.Mutex
	adaptiveCache   = map[string][]shortcut.Edge{}
)

// buildCached is Build with memoized adaptive selection. mkProfile is
// invoked only on a cache miss.
func buildCached(m *topology.Mesh, d Design, mkProfile func() traffic.Generator, opts Options) noc.Config {
	if d.Kind != Adaptive {
		return Build(m, d, nil, opts.ProfileCycles)
	}
	if d.RFRouters == 0 {
		d.RFRouters = 50
	}
	profile := mkProfile()
	key := fmt.Sprintf("%s|rate%.6f|seed%d|prof%d|budget%d|rf%d",
		profile.Name(), opts.Rate, opts.Seed, opts.ProfileCycles, d.budget(), d.RFRouters)
	adaptiveCacheMu.Lock()
	edges, ok := adaptiveCache[key]
	adaptiveCacheMu.Unlock()
	if !ok {
		freq := traffic.FrequencyMatrix(profile, m.N(), opts.ProfileCycles)
		edges = AdaptiveShortcuts(m, m.RFPlacement(d.RFRouters), freq, d.budget())
		adaptiveCacheMu.Lock()
		adaptiveCache[key] = edges
		adaptiveCacheMu.Unlock()
	}
	cfg := noc.Config{Mesh: m, Width: d.Width, Multicast: d.Multicast}
	if d.ShortcutWidthBytes > 0 {
		cfg.ShortcutWidthBytes = d.ShortcutWidthBytes
	}
	cfg.RFEnabled = m.RFPlacement(d.RFRouters)
	cfg.Shortcuts = edges
	return cfg
}

// Options controls simulation length and workload intensity.
type Options struct {
	// Cycles is the measured injection window (the paper runs its
	// probabilistic traces 1M network cycles; the default here is 60k,
	// which reproduces the same steady-state ratios in a fraction of the
	// time — raise it with cmd/experiments -cycles for full runs).
	Cycles int64

	// DrainCycles bounds post-injection draining.
	DrainCycles int64

	// Rate is the transaction injection rate per component per cycle.
	Rate float64

	// MulticastRate is the multicast injection probability per cycle for
	// the Section 5.2 experiments.
	MulticastRate float64

	// Seed makes runs reproducible.
	Seed int64

	// ProfileCycles is the dry-run length used to collect the frequency
	// matrix for adaptive shortcut selection.
	ProfileCycles int64

	// Histograms attaches a latency recorder and fills the Result's
	// PacketLatencyDist/FlitLatencyDist percentile digests.
	Histograms bool

	// Check attaches an invariant checker (flit conservation, credit
	// sanity, forward progress) that panics on violation. A checker is
	// always attached when running under "go test", Check or not.
	Check bool
}

// EstimatedCycles is the admission-time cost estimate of one run in
// simulated cycles: the injection window plus a drain allowance. The
// allowance models the common case — a quarter of the window's traffic
// still in flight, plus slack for cold pipelines — rather than the
// worst-case DrainCycles budget, which is orders of magnitude larger
// and would make every honest estimate look like a monster job. The
// sweep service sums this over a request's points to enforce its
// per-job cost ceiling, so one giant sweep cannot starve the pool.
func (o Options) EstimatedCycles() int64 {
	o = o.WithDefaults()
	drain := o.Cycles/4 + 1024
	if drain > o.DrainCycles {
		drain = o.DrainCycles
	}
	return o.Cycles + drain
}

// WithDefaults fills zero fields.
func (o Options) WithDefaults() Options {
	if o.Cycles == 0 {
		o.Cycles = 60000
	}
	if o.DrainCycles == 0 {
		o.DrainCycles = 400000
	}
	if o.Rate == 0 {
		o.Rate = traffic.DefaultRate
	}
	if o.MulticastRate == 0 {
		o.MulticastRate = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ProfileCycles == 0 {
		o.ProfileCycles = 20000
	}
	return o
}

// Result is one (workload, design) measurement.
type Result struct {
	Workload string
	Design   string

	AvgLatency float64 // average network latency per flit (the paper's metric)
	PowerW     float64 // average watts
	AreaMM2    float64

	Stats     noc.Stats
	Breakdown power.Breakdown
	Area      power.Area
	Drained   bool

	// Drain details the post-injection drain: cycles consumed, and — when
	// the budget ran out — how many packets were stranded and how old the
	// oldest one's head flit is (the difference between "almost done" and
	// "wedged").
	Drain noc.DrainReport

	// Interrupted marks a partial measurement: the run's context was
	// cancelled (timeout or shutdown) before the simulation finished.
	// Stats reflect the state at interruption.
	Interrupted bool

	// Latency percentile digests, populated when Options.Histograms is
	// set (Count is zero otherwise).
	PacketLatencyDist obs.Summary
	FlitLatencyDist   obs.Summary
}

// Run simulates one design under one workload. gen drives injection for
// opts.Cycles, then the network drains. Under "go test" every run
// carries an invariant checker, so any conservation or forward-progress
// regression fails the suite at the first bad audit.
func Run(cfg noc.Config, gen traffic.Generator, opts Options) Result {
	return RunObserved(cfg, gen, opts)
}

// RunObserved is Run with additional observers attached to the network
// for the duration of the simulation (latency recorders, link
// timelines, invariant checkers, or custom instrumentation).
func RunObserved(cfg noc.Config, gen traffic.Generator, opts Options, observers ...noc.Observer) Result {
	opts = opts.WithDefaults()
	n := noc.New(cfg)
	var rec *obs.LatencyRecorder
	if opts.Histograms {
		rec = obs.NewLatencyRecorder()
		n.AttachObserver(rec)
	}
	if opts.Check || testing.Testing() {
		n.AttachObserver(obs.NewInvariantCheckerForDrain(opts.DrainCycles))
	}
	for _, o := range observers {
		n.AttachObserver(o)
	}
	for now := int64(0); now < opts.Cycles; now++ {
		gen.Tick(now, n.Inject)
		n.Step()
	}
	drain := n.DrainWithReport(opts.DrainCycles)
	return buildResult(n, gen, cfg, drain, rec)
}

// RunDesign builds and simulates design d under the named probabilistic
// trace. Fresh same-seed generators are used for profiling (adaptive
// selection) and measurement, mirroring the paper's assumption that the
// application's communication profile is available beforehand.
func RunDesign(m *topology.Mesh, d Design, pat traffic.Pattern, opts Options) Result {
	opts = opts.WithDefaults()
	cfg := buildCached(m, d, func() traffic.Generator {
		return traffic.NewProbabilistic(m, pat, opts.Rate, opts.Seed)
	}, opts)
	gen := traffic.NewProbabilistic(m, pat, opts.Rate, opts.Seed)
	r := Run(cfg, gen, opts)
	r.Design = d.Name()
	return r
}

// RunDesignApp is RunDesign over a synthetic application trace.
func RunDesignApp(m *topology.Mesh, d Design, app traffic.App, opts Options) Result {
	opts = opts.WithDefaults()
	cfg := buildCached(m, d, func() traffic.Generator {
		return traffic.NewAppTrace(m, app, opts.Rate, opts.Seed)
	}, opts)
	gen := traffic.NewAppTrace(m, app, opts.Rate, opts.Seed)
	r := Run(cfg, gen, opts)
	r.Design = d.Name()
	return r
}

// RunDesignMulticast runs a multicast-augmented probabilistic trace.
func RunDesignMulticast(m *topology.Mesh, d Design, pat traffic.Pattern, localityPct int, opts Options) Result {
	opts = opts.WithDefaults()
	mkGen := func() traffic.Generator {
		base := traffic.NewProbabilistic(m, pat, opts.Rate, opts.Seed)
		return traffic.NewMulticastAugment(m, base, opts.MulticastRate, localityPct, opts.Seed)
	}
	cfg := buildCached(m, d, mkGen, opts)
	r := Run(cfg, mkGen(), opts)
	r.Design = fmt.Sprintf("%s-loc%d", d.Name(), localityPct)
	return r
}
