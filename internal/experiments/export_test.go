package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/topology"
)

func parseCSV(t *testing.T, b *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteTable2CSV(t *testing.T) {
	m := topology.New10x10()
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, Table2(m)); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 10 { // header + 9 designs
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	if rows[0][0] != "design" || rows[1][0] != "Mesh Baseline (16B)" {
		t.Errorf("unexpected rows: %v %v", rows[0], rows[1])
	}
	if !strings.HasPrefix(rows[1][4], "30.29") {
		t.Errorf("16B total = %q", rows[1][4])
	}
}

func TestWriteFig7CSVShape(t *testing.T) {
	r := Fig7Result{
		Traces:  []string{"Uniform", "1Hotspot"},
		Designs: []string{"static-16B"},
		Points:  [][]NormPoint{{{Latency: 0.8, Power: 1.1}, {Latency: 0.75, Power: 1.05}}},
	}
	var buf bytes.Buffer
	if err := WriteFig7CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[1][0] != "Uniform" || rows[1][1] != "static-16B" || rows[1][2] != "0.8000" {
		t.Errorf("row = %v", rows[1])
	}
}

func TestWriteFig9CSVShape(t *testing.T) {
	r := Fig9Result{
		Traces:  []string{"Uniform"},
		Configs: []string{"MC-20", "VCT-20"},
		Points: [][]NormPoint{
			{{Latency: 0.85, Power: 1.15}},
			{{Latency: 1.05, Power: 0.99}},
		},
	}
	var buf bytes.Buffer
	if err := WriteFig9CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[2][1] != "VCT-20" || rows[2][2] != "1.0500" {
		t.Errorf("row = %v", rows[2])
	}
}

func TestWriteFig10CSVShape(t *testing.T) {
	lines := []Fig10Line{{
		Name:   "Mesh Baseline",
		Widths: []string{"16B", "8B"},
		Perf:   []float64{1, 0.99},
		Power:  []float64{1, 0.43},
	}}
	var buf bytes.Buffer
	if err := WriteFig10CSV(&buf, lines); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[2][1] != "8B" || rows[2][3] != "0.4300" {
		t.Errorf("row = %v", rows[2])
	}
}

func TestWriteFig1AndSummaryCSV(t *testing.T) {
	hist := make([]int64, 19)
	hist[1] = 100
	f1 := Fig1Result{Apps: []string{"x264"}, Histograms: [][]int64{hist}}
	var buf bytes.Buffer
	if err := WriteFig1CSV(&buf, f1); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 19 { // header + 18 distances
		t.Fatalf("rows = %d, want 19", len(rows))
	}
	if rows[1][2] != "100" {
		t.Errorf("distance-1 count = %q", rows[1][2])
	}

	buf.Reset()
	claims := []Claim{{Name: "x", Paper: 0.8, Measured: 0.85}}
	if err := WriteSummaryCSV(&buf, claims); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if len(rows) != 2 || rows[1][3] != "5.0000" {
		t.Errorf("summary rows = %v", rows)
	}
}

func TestWriteAppStudyCSV(t *testing.T) {
	var buf bytes.Buffer
	rs := []AppResult{{App: "x264", Latency: 0.98, Power: 0.38}}
	if err := WriteAppStudyCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 || rows[1][0] != "x264" {
		t.Errorf("rows = %v", rows)
	}
}
