package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"repro/internal/checkpoint"
)

// WorkerEvent classifies worker-pool lifecycle events for metrics.
type WorkerEvent int

// Worker-pool events, in rough lifecycle order.
const (
	WorkerSpawned        WorkerEvent = iota // a child process started
	WorkerCrashed                           // a child died (or was killed) mid-job
	WorkerKilledHeartbeat                   // SIGKILL: heartbeats stopped
	WorkerKilledDeadline                    // SIGKILL: hard wall-clock deadline
	WorkerOOM                               // child self-terminated at its memory limit
	WorkerRestartBackoff                    // a respawn was delayed by crash backoff
)

// WorkerPoolConfig tunes a WorkerPool.
type WorkerPoolConfig struct {
	// Command is the worker argv — typically the daemon's own executable
	// plus "-worker" (re-exec), or a test binary gated by an env var.
	Command []string

	// Env is extra environment appended to the parent's own. The pool
	// adds GOMEMLIMIT itself when MemLimit is set.
	Env []string

	// Workers bounds live child processes; defaults to the package
	// Workers value.
	Workers int

	// MemLimit is the per-job soft Go memory limit in bytes. The child
	// self-terminates with an OOM outcome once its live heap exceeds it.
	MemLimit int64

	// Deadline is the hard per-attempt wall clock: past it the child is
	// SIGKILLed regardless of heartbeats. Zero disables it (the
	// supervisor's PointTimeout still cancels gracefully).
	Deadline time.Duration

	// Heartbeat is the child's heartbeat period (default 100ms);
	// HeartbeatMisses (default 20) consecutive silent periods get the
	// child SIGKILLed.
	Heartbeat       time.Duration
	HeartbeatMisses int

	// CancelGrace is how long a cancelled job may keep running while the
	// child checkpoints, before the SIGKILL (default 2s).
	CancelGrace time.Duration

	// RestartBackoff is the base respawn delay after a crash, doubling
	// per consecutive crash up to MaxRestartBackoff (defaults 50ms / 2s).
	// A successful outcome resets the streak.
	RestartBackoff    time.Duration
	MaxRestartBackoff time.Duration

	// OnEvent, when non-nil, observes lifecycle events (concurrently).
	OnEvent func(WorkerEvent)

	// ChaosJob, when non-nil, lets the chaos harness tag a dispatched
	// point with a worker-hostile fault directive ("panic", "alloc",
	// "hang"). Production never sets it.
	ChaosJob func(payload *PointPayload, fingerprint string) string
}

func (c WorkerPoolConfig) withDefaults() WorkerPoolConfig {
	if c.Workers <= 0 {
		c.Workers = Workers
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 20
	}
	if c.CancelGrace <= 0 {
		c.CancelGrace = 2 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 50 * time.Millisecond
	}
	if c.MaxRestartBackoff <= 0 {
		c.MaxRestartBackoff = 2 * time.Second
	}
	return c
}

// WorkerPoolStats is a snapshot of pool counters.
type WorkerPoolStats struct {
	Spawned         int64 `json:"spawned"`
	Crashed         int64 `json:"crashed"`
	KilledHeartbeat int64 `json:"killed_heartbeat"`
	KilledDeadline  int64 `json:"killed_deadline"`
	OOM             int64 `json:"oom"`
	RestartBackoffs int64 `json:"restart_backoffs"`
	JobsDispatched  int64 `json:"jobs_dispatched"`
	JobsCompleted   int64 `json:"jobs_completed"` // outcomes received, success or failure
	Live            int   `json:"live"`           // current child processes
}

// WorkerPool supervises a pool of out-of-process workers and implements
// Executor over them: each Execute ships one point to a child, relays
// heartbeats, and converts child death — crash, OOM, heartbeat loss,
// deadline overrun — into a *WorkerCrash error the sweep supervisor
// turns into a crash-dumped, quarantine-visible point failure. Workers
// are reused across jobs and respawned with exponential backoff after
// crashes, so a poison config degrades one point, not the daemon.
type WorkerPool struct {
	cfg WorkerPoolConfig

	slots chan struct{}

	mu     sync.Mutex
	idle   []*worker
	live   map[*worker]struct{}
	busy   map[*worker]struct{}
	streak int // consecutive crashes without an intervening success
	closed bool
	stats  WorkerPoolStats
}

// NewWorkerPool validates the config and returns an empty pool; workers
// spawn on demand.
func NewWorkerPool(cfg WorkerPoolConfig) (*WorkerPool, error) {
	if len(cfg.Command) == 0 {
		return nil, errors.New("experiments: worker pool needs a command")
	}
	cfg = cfg.withDefaults()
	return &WorkerPool{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.Workers),
		live:  map[*worker]struct{}{},
		busy:  map[*worker]struct{}{},
	}, nil
}

// worker is one child process.
type worker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	frames chan wireFrame // closed when stdout breaks (child death)
	stderr *tailBuffer
	waitErr chan error // buffered 1: cmd.Wait result, sent before frames closes
}

// tailBuffer keeps the last max bytes written, for stderr harvest.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
	max int
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = append(t.buf[:0:0], t.buf[len(t.buf)-t.max:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

func (p *WorkerPool) event(e WorkerEvent) {
	p.mu.Lock()
	switch e {
	case WorkerSpawned:
		p.stats.Spawned++
	case WorkerCrashed:
		p.stats.Crashed++
	case WorkerKilledHeartbeat:
		p.stats.KilledHeartbeat++
	case WorkerKilledDeadline:
		p.stats.KilledDeadline++
	case WorkerOOM:
		p.stats.OOM++
	case WorkerRestartBackoff:
		p.stats.RestartBackoffs++
	}
	cb := p.cfg.OnEvent
	p.mu.Unlock()
	if cb != nil {
		cb(e)
	}
}

// Stats snapshots the counters.
func (p *WorkerPool) Stats() WorkerPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Live = len(p.live)
	return s
}

// Execute implements Executor.
func (p *WorkerPool) Execute(ctx context.Context, payload *PointPayload, fp string, spec CheckpointSpec) (Result, error) {
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	defer func() { <-p.slots }()

	w, err := p.checkout(ctx)
	if err != nil {
		return Result{}, err
	}

	job := workerJob{
		Fingerprint: fp,
		Point:       *payload,
		CkptPath:    spec.Path,
		CkptEvery:   spec.Every,
		Resume:      spec.Resume,
		MemLimit:    p.cfg.MemLimit,
		HeartbeatMS: p.cfg.Heartbeat.Milliseconds(),
	}
	if p.cfg.ChaosJob != nil {
		job.Chaos = p.cfg.ChaosJob(payload, fp)
	}
	blob, err := json.Marshal(job)
	if err != nil {
		p.release(w, true)
		return Result{}, fmt.Errorf("experiments: encoding worker job: %w", err)
	}
	p.mu.Lock()
	p.stats.JobsDispatched++
	p.mu.Unlock()
	if err := checkpoint.WriteFrame(w.stdin, FrameJob, blob); err != nil {
		return Result{}, p.crashed(w, "rejected its job: "+err.Error(), false)
	}
	return p.supervise(ctx, w)
}

// supervise relays one dispatched job to its outcome, killing the
// worker on heartbeat loss, deadline overrun, or an overstayed cancel.
func (p *WorkerPool) supervise(ctx context.Context, w *worker) (Result, error) {
	hbTimeout := p.cfg.Heartbeat * time.Duration(p.cfg.HeartbeatMisses)
	hbTimer := time.NewTimer(hbTimeout)
	defer hbTimer.Stop()

	var deadlineC <-chan time.Time
	if p.cfg.Deadline > 0 {
		dl := time.NewTimer(p.cfg.Deadline)
		defer dl.Stop()
		deadlineC = dl.C
	}

	ctxDone := ctx.Done()
	var graceC <-chan time.Time
	for {
		select {
		case fr, ok := <-w.frames:
			if !ok {
				return Result{}, p.crashed(w, "exited unexpectedly", false)
			}
			switch fr.kind {
			case FrameHeartbeat:
				if !hbTimer.Stop() {
					select {
					case <-hbTimer.C:
					default:
					}
				}
				hbTimer.Reset(hbTimeout)
			case FrameOutcome:
				var out workerOutcome
				if err := json.Unmarshal(fr.payload, &out); err != nil {
					return Result{}, p.crashed(w, "sent a malformed outcome: "+err.Error(), false)
				}
				p.mu.Lock()
				p.stats.JobsCompleted++
				p.mu.Unlock()
				if out.OOM {
					p.event(WorkerOOM)
					err := p.crashed(w, "exceeded its memory limit", true)
					var wc *WorkerCrash
					if errors.As(err, &wc) {
						wc.OOM = true
						wc.Evidence = out.Evidence
						if out.Err != "" {
							wc.Reason = out.Err
						}
					}
					return Result{}, err
				}
				p.release(w, false)
				return convertOutcome(ctx, out)
			}
		case <-hbTimer.C:
			p.event(WorkerKilledHeartbeat)
			return Result{}, p.crashed(w, fmt.Sprintf("stopped heartbeating for %v", hbTimeout), true)
		case <-deadlineC:
			p.event(WorkerKilledDeadline)
			return Result{}, p.crashed(w, fmt.Sprintf("overran the %v hard deadline", p.cfg.Deadline), true)
		case <-ctxDone:
			// Graceful first: ask the child to checkpoint and answer.
			ctxDone = nil
			_ = checkpoint.WriteFrame(w.stdin, FrameCancel, nil)
			graceC = time.After(p.cfg.CancelGrace)
		case <-graceC:
			// The child ignored the cancel; reclaim the worker. This is a
			// cancellation, not a point failure — no WorkerCrash.
			p.reap(w, true)
			return Result{}, ctx.Err()
		}
	}
}

// convertOutcome maps a child's outcome frame back to Run semantics.
func convertOutcome(ctx context.Context, o workerOutcome) (Result, error) {
	var res Result
	if len(o.Result) > 0 {
		r, err := UnmarshalResult(o.Result)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: worker result corrupt in transit: %w", err)
		}
		res = r
	}
	switch {
	case o.Err == "":
		return res, nil
	case o.Canceled:
		if err := ctx.Err(); err != nil {
			return res, err
		}
		return res, context.Canceled
	case o.Resume:
		return res, fmt.Errorf("%w: worker: %s", ErrResume, o.Err)
	default:
		return res, errors.New(o.Err)
	}
}

// checkout returns an idle worker, reaping any that died while idle, or
// spawns a fresh one (after the crash-streak backoff, if any).
func (p *WorkerPool) checkout(ctx context.Context) (*worker, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errors.New("experiments: worker pool is closed")
		}
		var w *worker
		if n := len(p.idle); n > 0 {
			w = p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.busy[w] = struct{}{}
		}
		streak := p.streak
		p.mu.Unlock()

		if w != nil {
			select {
			case _, ok := <-w.frames:
				if !ok { // died while idle
					p.reap(w, false)
					continue
				}
				// A stray frame from an idle worker is a protocol
				// violation; treat the worker as unusable.
				p.reap(w, true)
				continue
			default:
				return w, nil
			}
		}

		if streak > 0 {
			shift := streak - 1
			if shift > 16 {
				shift = 16
			}
			backoff := p.cfg.RestartBackoff << uint(shift)
			if backoff > p.cfg.MaxRestartBackoff {
				backoff = p.cfg.MaxRestartBackoff
			}
			p.event(WorkerRestartBackoff)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return p.spawn()
	}
}

// spawn starts one worker process.
func (p *WorkerPool) spawn() (*worker, error) {
	cmd := exec.Command(p.cfg.Command[0], p.cfg.Command[1:]...)
	cmd.Env = append(os.Environ(), p.cfg.Env...)
	if p.cfg.MemLimit > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("GOMEMLIMIT=%d", p.cfg.MemLimit))
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("experiments: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("experiments: worker stdout: %w", err)
	}
	w := &worker{
		cmd:     cmd,
		stdin:   stdin,
		frames:  make(chan wireFrame),
		stderr:  &tailBuffer{max: 4096},
		waitErr: make(chan error, 1),
	}
	cmd.Stderr = w.stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("experiments: starting worker: %w", err)
	}
	go func() {
		for {
			kind, payload, err := checkpoint.ReadFrame(stdout)
			if err != nil {
				w.waitErr <- cmd.Wait()
				close(w.frames)
				return
			}
			w.frames <- wireFrame{kind, payload}
		}
	}()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.destroy(w, true)
		return nil, errors.New("experiments: worker pool is closed")
	}
	p.live[w] = struct{}{}
	p.busy[w] = struct{}{}
	p.mu.Unlock()
	p.event(WorkerSpawned)
	return w, nil
}

// release returns a worker to the idle list (or reaps it when the pool
// closed meanwhile, or drop is set). A released worker resets the
// crash streak: the pool is healthy again.
func (p *WorkerPool) release(w *worker, drop bool) {
	p.mu.Lock()
	delete(p.busy, w)
	closed := p.closed
	if !drop && !closed {
		p.idle = append(p.idle, w)
		p.streak = 0
	}
	p.mu.Unlock()
	if drop || closed {
		p.destroy(w, true)
	}
}

// crashed harvests a dead (or about-to-be-killed) worker into a
// *WorkerCrash, removes it from the pool, and bumps the crash streak.
// kill forces a SIGKILL first (heartbeat loss, deadline, OOM reap).
func (p *WorkerPool) crashed(w *worker, reason string, kill bool) error {
	p.reap(w, kill)
	p.event(WorkerCrashed)
	p.mu.Lock()
	p.streak++
	p.mu.Unlock()

	wc := &WorkerCrash{Reason: reason, ExitCode: -1}
	select {
	case err := <-w.waitErr:
		wc.ExitCode, wc.Signal = exitInfo(err)
	case <-time.After(5 * time.Second):
		// Wait is wedged (should not happen after SIGKILL); report what
		// we have rather than hanging the sweep.
	}
	wc.StderrTail = w.stderr.String()
	return wc
}

// reap removes a worker from the pool: SIGKILL when kill is set (a
// stdin close otherwise, letting a live child exit cleanly on EOF), and
// a drain of its frame channel so the reader goroutine can exit.
func (p *WorkerPool) reap(w *worker, kill bool) { p.destroy(w, kill) }

func (p *WorkerPool) destroy(w *worker, kill bool) {
	if kill && w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	w.stdin.Close()
	p.forget(w)
	go func() { // drain any in-flight frames until the reader closes
		for range w.frames {
		}
	}()
}

func (p *WorkerPool) forget(w *worker) {
	p.mu.Lock()
	delete(p.live, w)
	delete(p.busy, w)
	p.mu.Unlock()
}

// exitInfo extracts exit code and terminating signal from a Wait error.
func exitInfo(err error) (code int, sig string) {
	code = -1
	if err == nil {
		return 0, ""
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok {
			if ws.Signaled() {
				sig = ws.Signal().String()
			}
			if ws.Exited() {
				code = ws.ExitStatus()
			}
		}
	}
	return code, sig
}

// KillOneBusy SIGKILLs one worker that is currently running a job — the
// chaos harness's mid-point worker murder. Returns false when no worker
// is busy.
func (p *WorkerPool) KillOneBusy() bool {
	p.mu.Lock()
	var victim *worker
	for w := range p.busy {
		victim = w
		break
	}
	p.mu.Unlock()
	if victim == nil {
		return false
	}
	if victim.cmd.Process != nil {
		victim.cmd.Process.Kill()
	}
	return true
}

// Close kills every worker and refuses further Executes. Safe to call
// with Executes in flight: they observe their worker's death and fail.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	p.closed = true
	ws := make([]*worker, 0, len(p.live))
	for w := range p.live {
		ws = append(ws, w)
	}
	p.idle = nil
	p.mu.Unlock()
	for _, w := range ws {
		p.destroy(w, true)
	}
}
