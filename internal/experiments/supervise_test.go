package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ckptOpts keeps checkpoint tests fast while exercising both phases.
func ckptOpts() Options {
	return Options{Cycles: 3000, DrainCycles: 50000, Rate: 0.01, Seed: 42}
}

func ckptConfig(m *topology.Mesh) noc.Config {
	return noc.Config{
		Mesh:      m,
		Shortcuts: []shortcut.Edge{{From: 0, To: 99}, {From: 90, To: 9}},
	}
}

// cancelAt cancels a context once the network clock reaches a cycle,
// interrupting a run mid-flight at a deterministic point.
type cancelAt struct {
	noc.BaseObserver
	at     int64
	cancel context.CancelFunc
}

func (c *cancelAt) CycleEnd(n *noc.Network) {
	if n.Now() >= c.at {
		c.cancel()
	}
}

// TestRunCheckpointedResumeBitIdentical is the tentpole property at the
// experiments layer: interrupt a run mid-flight (with a live fault
// schedule driving permanent kills), resume it from the checkpoint file
// with fresh objects, and require the final statistics to be exactly
// those of an uninterrupted run.
func TestRunCheckpointedResumeBitIdentical(t *testing.T) {
	m := topology.New10x10()
	opts := ckptOpts()
	cfg := ckptConfig(m)
	schedule := fault.Schedule{
		{Cycle: 500, Kind: fault.KillBand, A: 0},
		{Cycle: 1500, Kind: fault.KillMeshLink, A: 12, B: 13},
	}
	mkGen := func() traffic.Generator {
		return traffic.NewProbabilistic(m, traffic.Hotspot2, opts.Rate, opts.Seed)
	}

	// Uninterrupted reference.
	refInj := fault.NewInjector(schedule)
	ref, err := RunCheckpointed(context.Background(), cfg, mkGen(), opts,
		CheckpointSpec{}, refInj)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(refInj.Applied()) != 2 {
		t.Fatalf("reference applied %d faults, want 2", len(refInj.Applied()))
	}

	for _, cut := range []int64{700, 2200} {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		liveInj := fault.NewInjector(schedule)
		partial, err := RunCheckpointed(ctx, cfg, mkGen(), opts,
			CheckpointSpec{Path: path, Every: 400,
				Extra: []checkpoint.Part{{Name: "faults", State: liveInj}}},
			liveInj, &cancelAt{at: cut, cancel: cancel})
		cancel()
		if err == nil {
			t.Fatalf("cut %d: interrupted run returned no error", cut)
		}
		if !partial.Interrupted {
			t.Fatalf("cut %d: partial result not marked Interrupted", cut)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("cut %d: no checkpoint file: %v", cut, err)
		}

		resInj := fault.NewInjector(schedule)
		got, err := RunCheckpointed(context.Background(), cfg, mkGen(), opts,
			CheckpointSpec{Path: path, Resume: true,
				Extra: []checkpoint.Part{{Name: "faults", State: resInj}}},
			resInj)
		if err != nil {
			t.Fatalf("cut %d: resumed run: %v", cut, err)
		}
		if !reflect.DeepEqual(got.Stats, ref.Stats) {
			t.Errorf("cut %d: resumed stats diverge from uninterrupted run", cut)
		}
		if got.Drained != ref.Drained || got.AvgLatency != ref.AvgLatency || got.PowerW != ref.PowerW {
			t.Errorf("cut %d: resumed result fields diverge", cut)
		}
		if !reflect.DeepEqual(resInj.Applied(), refInj.Applied()) {
			t.Errorf("cut %d: resumed injector applied %v, want %v", cut, resInj.Applied(), refInj.Applied())
		}
	}
}

// TestRunCheckpointedRejects covers the error paths: unserializable
// generators, invalid configs, corrupt resume files.
func TestRunCheckpointedRejects(t *testing.T) {
	m := topology.New10x10()
	opts := ckptOpts()
	gen := func() traffic.Generator {
		return traffic.NewProbabilistic(m, traffic.Uniform, opts.Rate, opts.Seed)
	}
	path := filepath.Join(t.TempDir(), "x.ckpt")

	t.Run("bad config", func(t *testing.T) {
		bad := noc.Config{Mesh: m, Shortcuts: []shortcut.Edge{{From: 5, To: 5}}}
		if _, err := RunCheckpointed(context.Background(), bad, gen(), opts, CheckpointSpec{}); err == nil {
			t.Fatal("invalid config accepted")
		}
	})
	t.Run("opaque generator", func(t *testing.T) {
		_, err := RunCheckpointed(context.Background(), ckptConfig(m), opaque{}, opts,
			CheckpointSpec{Path: path})
		if err == nil || !strings.Contains(err.Error(), "does not support checkpointing") {
			t.Fatalf("opaque generator: %v", err)
		}
	})
	t.Run("corrupt resume", func(t *testing.T) {
		if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := RunCheckpointed(context.Background(), ckptConfig(m), gen(),
			opts, CheckpointSpec{Path: path, Resume: true})
		if err == nil {
			t.Fatal("corrupt checkpoint accepted")
		}
	})
	t.Run("reserved extra name", func(t *testing.T) {
		_, err := RunCheckpointed(context.Background(), ckptConfig(m), gen(), opts,
			CheckpointSpec{Path: path, Extra: []checkpoint.Part{{Name: "network"}}})
		if err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Fatalf("reserved extra name: %v", err)
		}
	})
}

type opaque struct{}

func (opaque) Name() string                    { return "opaque" }
func (opaque) Tick(int64, func(m noc.Message)) {}

// panicOnceGen panics the first time the run crosses a trigger tick,
// then behaves like its base forever after (the panic consumed a flag
// shared across attempts) — modeling a transient crash a retry recovers
// from.
type panicOnceGen struct {
	base    *traffic.Prob
	trigger int64
	armed   *atomic.Bool
}

func (g *panicOnceGen) Name() string { return g.base.Name() }
func (g *panicOnceGen) Tick(now int64, inject func(m noc.Message)) {
	if now >= g.trigger && g.armed.CompareAndSwap(true, false) {
		panic("injected test crash")
	}
	g.base.Tick(now, inject)
}
func (g *panicOnceGen) CheckpointState() ([]byte, error) { return g.base.CheckpointState() }
func (g *panicOnceGen) RestoreCheckpointState(b []byte) error {
	return g.base.RestoreCheckpointState(b)
}

// TestSuperviseIsolatesPanics: a sweep with one persistently panicking
// point must complete every other point, write a crash dump for the bad
// one, and report partial results with a non-nil error.
func TestSuperviseIsolatesPanics(t *testing.T) {
	m := topology.New10x10()
	opts := Options{Cycles: 800, DrainCycles: 50000, Rate: 0.008, Seed: 7}
	dir := t.TempDir()

	mkGen := func() traffic.Generator {
		return traffic.NewProbabilistic(m, traffic.Uniform, opts.Rate, opts.Seed)
	}
	points := []SweepPoint{
		NewSweepPoint("good-a", ckptConfig(m), mkGen, opts, map[string]string{"design": "rf"}),
		{
			ID:   "bad",
			Meta: map[string]string{"design": "broken"},
			Run: func(ctx context.Context, spec CheckpointSpec) (Result, error) {
				panic("deliberate failure")
			},
		},
		NewSweepPoint("good-b", noc.Config{Mesh: m}, mkGen, opts, nil),
	}

	outs, err := Supervise(context.Background(), SuperviseConfig{
		Workers: 2, Retries: 1, RetryBackoff: time.Millisecond,
		Dir: dir, CheckpointEvery: 300,
	}, points)
	if err == nil {
		t.Fatal("Supervise returned nil error despite a failed point")
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outs))
	}
	for _, i := range []int{0, 2} {
		if outs[i].Err != nil {
			t.Errorf("point %s failed: %v", outs[i].ID, outs[i].Err)
		}
		if outs[i].Result.Stats.PacketsInjected == 0 {
			t.Errorf("point %s produced no traffic", outs[i].ID)
		}
	}
	bad := outs[1]
	if bad.Err == nil || !bad.Panicked {
		t.Fatalf("bad point: Err=%v Panicked=%v", bad.Err, bad.Panicked)
	}
	if bad.Attempts != 2 {
		t.Errorf("bad point attempts = %d, want 2 (1 + 1 retry)", bad.Attempts)
	}
	blob, err := os.ReadFile(bad.CrashDump)
	if err != nil {
		t.Fatalf("crash dump: %v", err)
	}
	var dump CrashDump
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("crash dump not valid JSON: %v", err)
	}
	if dump.ID != "bad" || !strings.Contains(dump.Panic, "deliberate failure") || dump.Stack == "" {
		t.Errorf("crash dump incomplete: %+v", dump)
	}
	if dump.Meta["design"] != "broken" {
		t.Errorf("crash dump meta = %v", dump.Meta)
	}
}

// TestSuperviseRetryResumesFromCheckpoint: a point that crashes once
// mid-run must, on retry, resume from its checkpoint and finish with
// exactly the uninterrupted run's statistics.
func TestSuperviseRetryResumesFromCheckpoint(t *testing.T) {
	m := topology.New10x10()
	opts := Options{Cycles: 2000, DrainCycles: 50000, Rate: 0.01, Seed: 5}
	cfg := ckptConfig(m)
	dir := t.TempDir()

	ref := Run(cfg, traffic.NewProbabilistic(m, traffic.BiDF, opts.Rate, opts.Seed), opts)

	var armed atomic.Bool
	armed.Store(true)
	pt := SweepPoint{
		ID: "flaky",
		Run: func(ctx context.Context, spec CheckpointSpec) (Result, error) {
			gen := &panicOnceGen{
				base:    traffic.NewProbabilistic(m, traffic.BiDF, opts.Rate, opts.Seed),
				trigger: 1100,
				armed:   &armed,
			}
			return RunCheckpointed(ctx, cfg, gen, opts, spec)
		},
	}
	outs, err := Supervise(context.Background(), SuperviseConfig{
		Workers: 1, Retries: 2, RetryBackoff: time.Millisecond,
		Dir: dir, CheckpointEvery: 250,
	}, []SweepPoint{pt})
	if err != nil {
		t.Fatalf("Supervise: %v (outcome err: %v)", err, outs[0].Err)
	}
	out := outs[0]
	if out.Attempts != 2 || !out.Panicked {
		t.Errorf("attempts=%d panicked=%v, want a crash then a clean retry", out.Attempts, out.Panicked)
	}
	if !reflect.DeepEqual(out.Result.Stats, ref.Stats) {
		t.Error("retried run's stats diverge from uninterrupted reference")
	}
	if dumpPath := filepath.Join(dir, "flaky.crash.json"); out.CrashDump != dumpPath {
		t.Errorf("crash dump path %q, want %q", out.CrashDump, dumpPath)
	}
}

// TestSuperviseHonorsCancellation: a cancelled context stops the sweep
// without retry churn.
func TestSuperviseHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int32{}
	var pts []SweepPoint
	for i := 0; i < 4; i++ {
		pts = append(pts, SweepPoint{
			ID: string(rune('a' + i)),
			Run: func(ctx context.Context, spec CheckpointSpec) (Result, error) {
				ran.Add(1)
				return Result{}, ctx.Err()
			},
		})
	}
	outs, err := Supervise(ctx, SuperviseConfig{Workers: 2, Retries: 3}, pts)
	if err == nil {
		t.Fatal("cancelled Supervise returned nil error")
	}
	for _, o := range outs {
		if o.Err == nil {
			t.Errorf("point %s succeeded under cancelled context", o.ID)
		}
		if o.Attempts > 1 {
			t.Errorf("point %s retried %d times under cancelled context", o.ID, o.Attempts)
		}
	}
}
