package experiments

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/noc"
	"repro/internal/topology"
)

// BenchmarkSweepThroughput measures supervised sweep throughput in
// points/sec, in-process vs through the worker-process pool, so the
// subprocess tax (spawn amortization, frame codec, JSON transit) is a
// pinned number instead of folklore. cmd/bench runs it with -benchtime
// 1x and gates regressions on ns/op like every other pinned benchmark.
func BenchmarkSweepThroughput(b *testing.B) {
	const points = 8
	mkPoints := func(base int64) []SweepPoint {
		pts := make([]SweepPoint, points)
		for i := range pts {
			pts[i] = benchPortablePoint(b, base+int64(i), 2000)
		}
		return pts
	}

	run := func(b *testing.B, exec Executor) {
		for i := 0; i < b.N; i++ {
			// Fresh seeds per iteration so no memoization can hide work.
			pts := mkPoints(int64(1000 + i*points))
			start := time.Now()
			if _, err := Supervise(context.Background(), SuperviseConfig{Workers: 4, Exec: exec}, pts); err != nil {
				b.Fatal(err)
			}
			if elapsed := time.Since(start); elapsed > 0 {
				b.ReportMetric(float64(points)/elapsed.Seconds(), "points/sec")
			}
		}
	}

	b.Run("inproc", func(b *testing.B) { run(b, nil) })
	b.Run("isolated", func(b *testing.B) {
		exe, err := os.Executable()
		if err != nil {
			b.Fatal(err)
		}
		pool, err := NewWorkerPool(WorkerPoolConfig{
			Command: []string{exe},
			Env:     []string{"RFSIM_EXP_WORKER=1"},
			Workers: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		run(b, pool)
	})
}

func benchPortablePoint(b *testing.B, seed, cycles int64) SweepPoint {
	b.Helper()
	pt, err := NewPortableSweepPoint(
		noc.Config{Mesh: topology.New10x10()},
		GenSpec{Workload: "uniform", Rate: 0.01, Seed: seed},
		Options{Cycles: cycles, DrainCycles: 50000, Rate: 0.01, Seed: seed},
		map[string]string{"bench": fmt.Sprint(seed)},
	)
	if err != nil {
		b.Fatal(err)
	}
	return pt
}
