package experiments

import (
	"runtime"
	"sync"
)

// The figure runners fan independent simulations out over a bounded
// worker pool. Each simulation owns its network and generators, so the
// only shared state is the adaptive-selection cache (mutex-protected in
// run.go). Results land in pre-sized slots, keeping output order
// deterministic regardless of scheduling.

// Workers bounds experiment parallelism. Defaults to GOMAXPROCS; tests
// and benchmarks may reduce it for determinism of timing measurements.
var Workers = runtime.GOMAXPROCS(0)

// forEach runs fn(i) for i in [0, n) on the worker pool.
func forEach(n int, fn func(int)) {
	workers := Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
