package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/topology"
)

// WorkerMain is the entry point of a worker child process (rfsimd
// -worker, or a test binary re-exec'd by TestMain). It reads job frames
// from stdin, runs each point under the job's memory limit while
// heartbeating on stdout, and answers with an outcome frame. It returns
// the process exit code: 0 on clean shutdown (stdin EOF), non-zero on a
// broken pipe or protocol violation — and it never returns at all from
// an OOM self-termination, which exits directly after flushing the OOM
// outcome so the parent learns the reason before the process is gone.
func WorkerMain(stdin io.Reader, stdout, stderr io.Writer) int {
	w := &workerProc{stdout: stdout, stderr: stderr}

	frames := make(chan wireFrame)
	readErr := make(chan error, 1)
	go func() {
		defer close(frames)
		for {
			kind, payload, err := checkpoint.ReadFrame(stdin)
			if err != nil {
				readErr <- err
				return
			}
			frames <- wireFrame{kind, payload}
		}
	}()

	for fr := range frames {
		switch fr.kind {
		case FrameCancel:
			continue // stale cancel for a job that already answered
		case FrameJob:
		default:
			fmt.Fprintf(stderr, "worker: unexpected frame kind %d\n", fr.kind)
			return 1
		}
		var job workerJob
		if err := json.Unmarshal(fr.payload, &job); err != nil {
			fmt.Fprintf(stderr, "worker: malformed job: %v\n", err)
			return 1
		}
		if err := w.runJob(&job, frames); err != nil {
			fmt.Fprintf(stderr, "worker: %v\n", err)
			return 1
		}
	}
	if err := <-readErr; err != io.EOF {
		fmt.Fprintf(stderr, "worker: reading stdin: %v\n", err)
		return 1
	}
	return 0
}

type wireFrame struct {
	kind    byte
	payload []byte
}

type workerProc struct {
	outMu  sync.Mutex
	stdout io.Writer
	stderr io.Writer
}

func (w *workerProc) send(kind byte, payload []byte) error {
	w.outMu.Lock()
	defer w.outMu.Unlock()
	return checkpoint.WriteFrame(w.stdout, kind, payload)
}

func (w *workerProc) sendOutcome(o workerOutcome) error {
	blob, err := json.Marshal(o)
	if err != nil {
		return fmt.Errorf("encoding outcome: %v", err)
	}
	return w.send(FrameOutcome, blob)
}

// runJob executes one job start to outcome. frames delivers any cancel
// frame the parent sends while the job runs; the job watcher drains it
// (the parent never pipelines a second job before the outcome).
func (w *workerProc) runJob(job *workerJob, frames <-chan wireFrame) error {
	if job.MemLimit > 0 {
		debug.SetMemoryLimit(job.MemLimit)
	}
	hb := time.Duration(job.HeartbeatMS) * time.Millisecond
	if hb <= 0 {
		hb = 100 * time.Millisecond
	}

	ctx, cancel := context.WithCancel(context.Background())
	jobDone := make(chan struct{})
	var watchers sync.WaitGroup

	// Cancel watcher: a FrameCancel while the job runs cancels its
	// context so RunCheckpointed checkpoints and returns the partial
	// result. It keeps draining until the job settles, so a cancel that
	// races the outcome is swallowed here, not misread as a next job.
	watchers.Add(1)
	go func() {
		defer watchers.Done()
		for {
			select {
			case <-jobDone:
				return
			case fr, ok := <-frames:
				if !ok || fr.kind == FrameCancel {
					cancel()
				}
				if !ok {
					return
				}
			}
		}
	}()

	// Heartbeat + OOM self-watch. The Go runtime treats GOMEMLIMIT as a
	// soft limit: the GC fights to stay under it but a workload whose
	// live set exceeds the limit degenerates into a GC death spiral
	// instead of failing. The watch turns that into a crisp, reportable
	// OOM: once the live heap is over the limit the worker sends an OOM
	// outcome with evidence and exits.
	watchers.Add(1)
	go func() {
		defer watchers.Done()
		hbTick := time.NewTicker(hb)
		defer hbTick.Stop()
		memTick := time.NewTicker(10 * time.Millisecond)
		defer memTick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-jobDone:
				return
			case <-hbTick.C:
				if job.Chaos == "hang" {
					continue // simulate a wedged worker: alive but silent
				}
				if w.send(FrameHeartbeat, nil) != nil {
					return // parent is gone; the run's ctx kill follows
				}
			case <-memTick.C:
				if job.MemLimit <= 0 {
					continue
				}
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > uint64(job.MemLimit) {
					w.sendOutcome(workerOutcome{
						Err:      fmt.Sprintf("memory limit exceeded: %d byte heap over %d byte limit", ms.HeapAlloc, job.MemLimit),
						OOM:      true,
						Evidence: captureEvidence(),
					})
					exitProcess(3)
				}
			}
		}
	}()

	out := w.execute(ctx, job)
	close(jobDone)
	cancel()
	watchers.Wait()
	return w.sendOutcome(out)
}

// execute runs the point (or its chaos stand-in) and maps the result to
// an outcome frame.
func (w *workerProc) execute(ctx context.Context, job *workerJob) workerOutcome {
	if job.Chaos != "" {
		runWorkerChaos(job.Chaos)
	}
	cfg := job.Point.Config
	cfg.Mesh = topology.New(job.Point.MeshW, job.Point.MeshH)
	gen, err := job.Point.Gen.Build(cfg.Mesh)
	if err != nil {
		return workerOutcome{Err: err.Error()}
	}
	spec := CheckpointSpec{Path: job.CkptPath, Every: job.CkptEvery, Resume: job.Resume}
	res, err := RunCheckpointed(ctx, cfg, gen, job.Point.Opts, spec)
	out := workerOutcome{}
	if err == nil || ctx.Err() != nil {
		if blob, merr := MarshalResult(res); merr == nil {
			out.Result = blob
		}
	}
	if err != nil {
		out.Err = err.Error()
		out.Canceled = ctx.Err() != nil && errors.Is(err, ctx.Err())
		out.Resume = errors.Is(err, ErrResume)
	}
	return out
}

// runWorkerChaos simulates a hostile point inside the worker. "panic"
// crashes the process the way runtime corruption would; "alloc" grows a
// live heap until the memory watch trips; "hang" wedges without
// heartbeats until the supervisor's SIGKILL arrives.
func runWorkerChaos(kind string) {
	switch kind {
	case "panic":
		panic("worker chaos: injected panic")
	case "alloc":
		var hoard [][]byte
		for {
			block := make([]byte, 1<<20)
			for i := 0; i < len(block); i += 512 {
				block[i] = byte(i) // touch pages so the heap is real
			}
			hoard = append(hoard, block)
			time.Sleep(time.Millisecond)
		}
	case "hang":
		// The heartbeat goroutine also checks for "hang" and goes
		// silent, so the supervisor sees exactly what a livelocked
		// worker looks like: a live process that stopped answering.
		select {}
	}
}

// exitProcess is os.Exit behind a seam (the OOM self-termination path).
var exitProcess = func(code int) { os.Exit(code) }
