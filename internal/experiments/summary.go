package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/noc"
	"repro/internal/shortcut"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Claim pairs one of the paper's headline numbers with our measurement.
type Claim struct {
	Name     string
	Paper    float64 // the paper's reported value (ratio vs baseline)
	Measured float64
}

// Delta returns measured - paper in percentage points.
func (c Claim) Delta() float64 { return (c.Measured - c.Paper) * 100 }

// Summary regenerates the paper's headline claims (Section 5 and the
// abstract) from fresh simulations and pairs each with the paper's
// number. All values are ratios versus the 16 B baseline mesh (latency
// and power; < 1 means reduced).
func Summary(m *topology.Mesh, opts Options) []Claim {
	opts = opts.WithDefaults()

	f7 := Fig7(m, opts)
	means7 := f7.Means()
	// Designs: static-16B, adaptive50-16B, adaptive25-16B.

	f8 := Fig8(m, opts)
	means8 := f8.Means()
	// Designs: (baseline, static, adaptive50) x (16,8,4).
	idx8 := map[string]int{}
	for i, d := range f8.Designs {
		idx8[d] = i
	}

	f9 := Fig9(m, opts)
	means9 := f9.Means()
	idx9 := map[string]int{}
	for i, c := range f9.Configs {
		idx9[c] = i
	}

	claims := []Claim{
		{"static shortcuts: latency vs 16B baseline", 0.80, means7[0].Latency},
		{"static shortcuts: power vs 16B baseline", 1.11, means7[0].Power},
		{"adaptive-50: latency vs 16B baseline", 0.68, means7[1].Latency},
		{"adaptive-50: power vs 16B baseline", 1.24, means7[1].Power},
		{"adaptive-25: latency vs 16B baseline", 0.72, means7[2].Latency},
		{"adaptive-25: power vs 16B baseline", 1.15, means7[2].Power},

		{"8B baseline: power vs 16B", 0.52, means8[idx8["baseline-8B"]].Power},
		{"8B baseline: latency vs 16B", 1.04, means8[idx8["baseline-8B"]].Latency},
		{"4B baseline: power vs 16B", 0.28, means8[idx8["baseline-4B"]].Power},
		{"4B baseline: latency vs 16B", 1.27, means8[idx8["baseline-4B"]].Latency},
		{"4B static: power vs 16B baseline", 0.33, means8[idx8["static-4B"]].Power},
		{"4B static: latency vs 16B baseline", 1.11, means8[idx8["static-4B"]].Latency},
		{"4B adaptive: power vs 16B baseline", 0.38, means8[idx8["adaptive50-4B"]].Power},
		{"4B adaptive: latency vs 16B baseline", 0.99, means8[idx8["adaptive50-4B"]].Latency},

		{"RF multicast: latency vs baseline", 0.86, means9[idx9["MC-20"]].Latency},
		{"RF multicast: power vs baseline", 1.11, means9[idx9["MC-20"]].Power},
		{"MC+SC: latency vs baseline", 0.63, means9[idx9["MC+SC-20"]].Latency},
		{"MC+SC: power vs baseline", 1.25, means9[idx9["MC+SC-20"]].Power},
	}
	return claims
}

// RenderSummary draws the claim table.
func RenderSummary(claims []Claim) string {
	t := stats.NewTable("claim", "paper", "measured", "delta (pp)")
	for _, c := range claims {
		t.AddRow(c.Name, fmt.Sprintf("%.2f", c.Paper),
			fmt.Sprintf("%.3f", c.Measured), fmt.Sprintf("%+.1f", c.Delta()))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Ablations: the DESIGN.md-listed design-choice studies.
// ---------------------------------------------------------------------

// AblationHeuristics compares the two Figure 3 shortcut-selection
// heuristics by objective value (total pairwise shortest-path cost) on
// the 10x10 mesh; the paper found them comparable and kept the cheaper
// max-cost variant.
func AblationHeuristics(m *topology.Mesh, budget int) (permutation, maxCost int64) {
	g := m.Graph()
	p := shortcut.Params{Budget: budget, Eligible: m.ShortcutEligible}
	pg := shortcut.Apply(g, shortcut.SelectGreedyPermutation(g, p))
	mg := shortcut.Apply(g, shortcut.SelectMaxCost(g, p))
	return pg.TotalPairCost(), mg.TotalPairCost()
}

// AblationRegion compares region-based application-specific selection
// against pure pair-based selection on a hotspot workload, reporting the
// measured average latency of each.
func AblationRegion(m *topology.Mesh, opts Options) (region, pair float64) {
	opts = opts.WithDefaults()
	profile := traffic.NewProbabilistic(m, traffic.Hotspot1, opts.Rate, opts.Seed)
	freq := traffic.FrequencyMatrix(profile, m.N(), opts.ProfileCycles)
	rfSet := m.RFPlacement(50)
	rf := map[int]bool{}
	for _, id := range rfSet {
		rf[id] = true
	}
	eligible := func(id int) bool { return rf[id] && m.ShortcutEligible(id) }

	run := func(edges []shortcut.Edge) float64 {
		cfg := noc.Config{Mesh: m, Width: tech.Width4B, Shortcuts: edges, RFEnabled: rfSet}
		gen := traffic.NewProbabilistic(m, traffic.Hotspot1, opts.Rate, opts.Seed)
		return Run(cfg, gen, opts).AvgLatency
	}
	regionEdges := AdaptiveShortcuts(m, rfSet, freq, tech.ShortcutBudget)
	pairEdges := shortcut.SelectMaxCost(m.Graph(), shortcut.Params{
		Budget: tech.ShortcutBudget, Eligible: eligible,
		Freq: freq,
	})
	return run(regionEdges), run(pairEdges)
}

// AblationEscapeVC sweeps the escape-timeout parameter on a shortcut
// topology under load and reports latency per timeout.
func AblationEscapeVC(m *topology.Mesh, timeouts []int64, opts Options) map[int64]float64 {
	opts = opts.WithDefaults()
	out := map[int64]float64{}
	edges := StaticShortcuts(m, tech.ShortcutBudget)
	for _, to := range timeouts {
		cfg := Build(m, Design{Kind: Static, Width: tech.Width4B}, nil, 0)
		cfg.Shortcuts = edges
		cfg.EscapeTimeout = to
		gen := traffic.NewProbabilistic(m, traffic.Hotspot2, opts.Rate, opts.Seed)
		r := Run(cfg, gen, opts)
		out[to] = r.AvgLatency
	}
	return out
}

// AblationShortcutWidth splits the fixed 256 B RF-I aggregate bandwidth
// into different shortcut widths (more, narrower shortcuts versus fewer,
// wider ones) on the 4 B mesh, and reports latency normalized to the 4 B
// baseline per width. Widths must be multiples of the 4 B flit size.
func AblationShortcutWidth(m *topology.Mesh, widths []int, opts Options) map[int]float64 {
	opts = opts.WithDefaults()
	out := map[int]float64{}
	base := RunDesign(m, Design{Kind: Baseline, Width: tech.Width4B}, traffic.Uniform, opts)
	for _, w := range widths {
		d := Design{Kind: Static, Width: tech.Width4B, ShortcutWidthBytes: w}
		r := RunDesign(m, d, traffic.Uniform, opts)
		out[w] = r.AvgLatency / base.AvgLatency
	}
	return out
}

// AblationVCConfig sweeps virtual-channel count and buffer depth on the
// 4 B mesh with static shortcuts under hotspot traffic, reporting average
// per-flit latency for each (vcsPerClass, bufDepth) point. The paper
// fixes 8 escape VCs; this shows how much router buffering the
// architecture actually needs.
func AblationVCConfig(m *topology.Mesh, vcs, depths []int, opts Options) map[[2]int]float64 {
	opts = opts.WithDefaults()
	out := map[[2]int]float64{}
	var mu sync.Mutex
	edges := StaticShortcuts(m, tech.ShortcutBudget)
	type point struct{ v, d int }
	var pts []point
	for _, v := range vcs {
		for _, d := range depths {
			pts = append(pts, point{v, d})
		}
	}
	forEach(len(pts), func(i int) {
		p := pts[i]
		cfg := noc.Config{
			Mesh: m, Width: tech.Width4B, Shortcuts: edges,
			VCsPerClass: p.v, BufDepth: p.d,
		}
		gen := traffic.NewProbabilistic(m, traffic.Hotspot2, opts.Rate, opts.Seed)
		r := Run(cfg, gen, opts)
		mu.Lock()
		out[[2]int{p.v, p.d}] = r.AvgLatency
		mu.Unlock()
	})
	return out
}

// RoutingComparison runs the classic permutation patterns under
// deterministic XY and minimal-adaptive routing on the 4 B baseline mesh
// and reports per-flit latency for each (pattern, mode).
type RoutingRow struct {
	Pattern       string
	Deterministic float64
	Adaptive      float64
}

// RoutingStudy compares the two routing functions over the permutation
// suite (the HPCA-2008 adaptive-routing question on workloads built to
// punish dimension order). The patterns only separate the routers under
// contention, so the sweep runs at a heavy fixed rate rather than the
// light default.
func RoutingStudy(m *topology.Mesh, opts Options) []RoutingRow {
	opts = opts.WithDefaults()
	const permRate = 0.03 // per-core sends per cycle: deep in the contended regime at 4 B
	perms := traffic.Permutations()
	out := make([]RoutingRow, len(perms))
	forEach(len(perms)*2, func(k int) {
		pi, adaptive := k/2, k%2 == 1
		cfg := noc.Config{Mesh: m, Width: tech.Width4B, AdaptiveRouting: adaptive}
		gen := traffic.NewSynthetic(m, perms[pi], permRate, opts.Seed)
		r := Run(cfg, gen, opts)
		if adaptive {
			out[pi].Adaptive = r.AvgLatency
		} else {
			out[pi].Deterministic = r.AvgLatency
		}
		out[pi].Pattern = perms[pi].String()
	})
	return out
}

// RenderRoutingStudy draws the comparison.
func RenderRoutingStudy(rows []RoutingRow) string {
	t := stats.NewTable("pattern", "XY latency/flit", "adaptive latency/flit", "gain")
	for _, r := range rows {
		t.AddRow(r.Pattern, fmt.Sprintf("%.1f", r.Deterministic),
			fmt.Sprintf("%.1f", r.Adaptive),
			fmt.Sprintf("%.2fx", r.Deterministic/r.Adaptive))
	}
	return t.String()
}

// RenderClaimNames lists claim names (used by the CLI for filtering).
func RenderClaimNames(claims []Claim) string {
	var names []string
	for _, c := range claims {
		names = append(names, c.Name)
	}
	return strings.Join(names, "\n")
}
