package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV exporters so the regenerated figures can be plotted directly.
// Each writer emits one tidy table: a header row then one row per
// (workload, design) observation.

// WriteFig7CSV exports a Fig7Result (also used for Figure 8) as
// trace,design,norm_latency,norm_power rows.
func WriteFig7CSV(w io.Writer, r Fig7Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace", "design", "norm_latency", "norm_power"}); err != nil {
		return err
	}
	for di, d := range r.Designs {
		for ti, tr := range r.Traces {
			p := r.Points[di][ti]
			if err := cw.Write([]string{
				tr, d, formatF(p.Latency), formatF(p.Power),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig9CSV exports the multicast study.
func WriteFig9CSV(w io.Writer, r Fig9Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace", "config", "norm_latency", "norm_power"}); err != nil {
		return err
	}
	for ci, c := range r.Configs {
		for ti, tr := range r.Traces {
			p := r.Points[ci][ti]
			if err := cw.Write([]string{
				tr, c, formatF(p.Latency), formatF(p.Power),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig10CSV exports power-performance lines.
func WriteFig10CSV(w io.Writer, lines []Fig10Line) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"architecture", "width", "norm_perf", "norm_power"}); err != nil {
		return err
	}
	for _, l := range lines {
		for i := range l.Widths {
			if err := cw.Write([]string{
				l.Name, l.Widths[i], formatF(l.Perf[i]), formatF(l.Power[i]),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV exports the area table.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"design", "router_mm2", "link_mm2", "rfi_mm2", "total_mm2"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Design, formatF(r.Router), formatF(r.Link), formatF(r.RFI), formatF(r.Total),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig1CSV exports the distance histograms as app,distance,messages.
func WriteFig1CSV(w io.Writer, r Fig1Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "distance", "messages"}); err != nil {
		return err
	}
	for i, app := range r.Apps {
		for d := 1; d < len(r.Histograms[i]); d++ {
			if err := cw.Write([]string{
				app, strconv.Itoa(d), strconv.FormatInt(r.Histograms[i][d], 10),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAppStudyCSV exports the application comparison.
func WriteAppStudyCSV(w io.Writer, rs []AppResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "norm_latency", "norm_power"}); err != nil {
		return err
	}
	for _, r := range rs {
		if err := cw.Write([]string{r.App, formatF(r.Latency), formatF(r.Power)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummaryCSV exports the headline-claims ledger.
func WriteSummaryCSV(w io.Writer, claims []Claim) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"claim", "paper", "measured", "delta_pp"}); err != nil {
		return err
	}
	for _, c := range claims {
		if err := cw.Write([]string{
			c.Name, formatF(c.Paper), formatF(c.Measured), formatF(c.Delta()),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string {
	return fmt.Sprintf("%.4f", v)
}
