package experiments

import (
	"strings"
	"testing"

	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestLoadCurveShape(t *testing.T) {
	m := topology.New10x10()
	rates := []float64{0.002, 0.008, 0.016}
	curves := LoadLatency(m,
		[]Design{{Kind: Baseline, Width: tech.Width4B}, {Kind: Static, Width: tech.Width4B}},
		traffic.Uniform, rates, Options{Cycles: 8000})
	if len(curves) != 2 {
		t.Fatalf("curves = %d, want 2", len(curves))
	}
	base, static := curves[0], curves[1]
	// Latency rises monotonically with offered load.
	for i := 1; i < len(base.Points); i++ {
		if base.Points[i].AvgLatency <= base.Points[i-1].AvgLatency {
			t.Errorf("baseline latency not increasing: %v -> %v",
				base.Points[i-1].AvgLatency, base.Points[i].AvgLatency)
		}
	}
	// Throughput tracks offered load below saturation.
	if base.Points[1].Throughput <= base.Points[0].Throughput {
		t.Error("throughput should grow with load below saturation")
	}
	// Shortcuts shift the curve down at low load.
	if static.Points[0].AvgLatency >= base.Points[0].AvgLatency {
		t.Errorf("static zero-load latency %v should beat baseline %v",
			static.Points[0].AvgLatency, base.Points[0].AvgLatency)
	}
	// Rendering includes every design once per rate.
	out := RenderLoadCurves(curves)
	if got := strings.Count(out, "baseline-4B"); got != len(rates) {
		t.Errorf("render has %d baseline rows, want %d", got, len(rates))
	}
}

func TestSaturationRate(t *testing.T) {
	c := LoadCurve{Points: []LoadPoint{
		{Rate: 0.002, AvgLatency: 30},
		{Rate: 0.008, AvgLatency: 45},
		{Rate: 0.016, AvgLatency: 900},
		{Rate: 0.020, AvgLatency: 2000, Saturated: true},
	}}
	if got := c.SaturationRate(100); got != 0.008 {
		t.Errorf("saturation rate = %v, want 0.008", got)
	}
	if got := c.SaturationRate(1000); got != 0.016 {
		t.Errorf("saturation rate = %v, want 0.016", got)
	}
}

func TestSaturationThroughputNearBisectionBound(t *testing.T) {
	// At heavy uniform load the 4B mesh's accepted throughput must level
	// off near its bisection limit rather than growing without bound:
	// 20 bisection links x 1 flit/cycle, roughly half the traffic
	// crossing, ~2x that in total ejected flits (plus local traffic).
	m := topology.New10x10()
	curves := LoadLatency(m, []Design{{Kind: Baseline, Width: tech.Width4B}},
		traffic.Uniform, []float64{0.020, 0.032}, Options{Cycles: 8000})
	p := curves[0].Points
	growth := p[1].Throughput / p[0].Throughput
	if growth > 1.15 {
		t.Errorf("throughput still growing %.2fx past saturation", growth)
	}
	if p[1].Throughput < 10 || p[1].Throughput > 40 {
		t.Errorf("saturation throughput = %.1f flits/cycle, want O(20)", p[1].Throughput)
	}
}
