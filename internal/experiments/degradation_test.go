package experiments

import (
	"strings"
	"testing"

	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestDegradationCurveShape(t *testing.T) {
	m := topology.New10x10()
	d := Design{Kind: Static, Width: tech.Width4B, ShortcutBudget: 3}
	points := DegradationCurve(m, d, traffic.Uniform,
		Options{Cycles: 6000, Rate: 0.008, Seed: 9})

	if len(points) != 4 {
		t.Fatalf("points = %d, want 4 (budget 3 + the fault-free point)", len(points))
	}
	for _, p := range points {
		if !p.Drained {
			t.Fatalf("point killed=%d did not drain", p.Killed)
		}
		if p.AvgLatency <= 0 || p.PostFaultLatency <= 0 || p.Throughput <= 0 {
			t.Errorf("point killed=%d has non-positive metrics: %+v", p.Killed, p)
		}
	}
	// No kills: every band-cycle alive.
	if points[0].Availability != 1 {
		t.Errorf("fault-free availability = %v, want 1", points[0].Availability)
	}
	// Availability falls strictly as more bands die (kills land a quarter
	// of the way in, so each extra dead band costs ~3/4 of a band-run).
	for k := 1; k < len(points); k++ {
		if points[k].Availability >= points[k-1].Availability {
			t.Errorf("availability not decreasing at killed=%d: %v -> %v",
				k, points[k-1].Availability, points[k].Availability)
		}
	}
	// A fully dead overlay cannot beat the intact one on post-fault
	// latency.
	first, last := points[0], points[len(points)-1]
	if last.PostFaultLatency < first.PostFaultLatency {
		t.Errorf("post-fault latency with all bands dead (%v) beats intact overlay (%v)",
			last.PostFaultLatency, first.PostFaultLatency)
	}

	out := RenderDegradation(points)
	if !strings.Contains(out, "killed") || strings.Count(out, "\n") != len(points)+1 {
		t.Errorf("render malformed:\n%s", out)
	}
}
