// Package rfi models the multi-band RF-interconnect physical layer of
// the HPCA-2008 paper: the bundle of on-chip transmission lines, the
// frequency-band plan that divides its aggregate bandwidth among
// shortcuts (and optionally a multicast channel), per-access-point
// transmitter/receiver tuning, and the cost of reconfiguration.
//
// Physically, the overlay is a serpentine bundle of differential
// transmission lines shared by every access point. Logically it is a set
// of frequency-division channels: each unicast shortcut occupies one band
// (16 B/cycle = 256 Gbps by default), a multicast channel occupies one
// band with one transmitter and many receivers, and bands are created or
// re-assigned by re-tuning the mixers at the endpoints — no wires move.
package rfi

import (
	"errors"
	"fmt"

	"repro/internal/shortcut"
	"repro/internal/tech"
)

// Band is one frequency-division channel on the shared bundle.
type Band struct {
	// Index is the band number, 0-based from the lowest carrier.
	Index int
	// CarrierGHz is the band's carrier frequency. Bands are spaced so
	// each carries one shortcut's bandwidth with guard spacing, starting
	// above the baseband.
	CarrierGHz float64
	// WidthBytes is the data the band moves per network cycle.
	WidthBytes int
	// Multicast marks the broadcast band (one Tx, many tuned Rx).
	Multicast bool
	// Tx and Rx are the endpoint router ids. For the multicast band Rx
	// lists every tuned receiver; for a shortcut it has one entry.
	Tx int
	Rx []int
}

// BandwidthGbps returns the band's bandwidth.
func (b Band) BandwidthGbps() float64 {
	return tech.ShortcutBandwidthGbps(b.WidthBytes)
}

// Plan is a complete allocation of the bundle's aggregate bandwidth.
type Plan struct {
	Bands []Band
	// Lines is the number of physical transmission lines the plan needs.
	Lines int
}

// carrierBaseGHz is the lowest carrier frequency; bands step by
// carrierStepGHz. The absolute values are cosmetic (they follow the
// mm-wave CMOS carriers of the RF-I papers) — capacity checking is what
// matters functionally.
const (
	carrierBaseGHz = 30.0
	carrierStepGHz = 10.0
)

// NewPlan allocates bands for a shortcut set, plus one multicast band
// with the given receivers when mcReceivers is non-nil. shortcutWidth is
// the per-band width in bytes (16 in the paper). It returns an error if
// the allocation exceeds the bundle's aggregate bandwidth.
func NewPlan(shortcuts []shortcut.Edge, shortcutWidth int, mcReceivers []int) (*Plan, error) {
	if shortcutWidth <= 0 {
		shortcutWidth = tech.ShortcutWidthBytes
	}
	need := len(shortcuts) * shortcutWidth
	if mcReceivers != nil {
		need += shortcutWidth
	}
	if need > tech.RFIAggregateBytes {
		return nil, fmt.Errorf("rfi: plan needs %d B/cycle, aggregate is %d B/cycle",
			need, tech.RFIAggregateBytes)
	}
	p := &Plan{}
	for i, e := range shortcuts {
		p.Bands = append(p.Bands, Band{
			Index:      i,
			CarrierGHz: carrierBaseGHz + float64(i)*carrierStepGHz,
			WidthBytes: shortcutWidth,
			Tx:         e.From,
			Rx:         []int{e.To},
		})
	}
	if mcReceivers != nil {
		p.Bands = append(p.Bands, Band{
			Index:      len(shortcuts),
			CarrierGHz: carrierBaseGHz + float64(len(shortcuts))*carrierStepGHz,
			WidthBytes: shortcutWidth,
			Multicast:  true,
			Tx:         -1, // arbitrated among cache clusters at runtime
			Rx:         append([]int(nil), mcReceivers...),
		})
	}
	p.Lines = linesFor(float64(need*8) * tech.NetworkClockHz / 1e9)
	return p, nil
}

// linesFor returns the physical transmission lines needed for a total
// bandwidth in Gbps at tech.RFILineBandwidthGbps per line.
func linesFor(gbps float64) int {
	lines := int(gbps / tech.RFILineBandwidthGbps)
	if float64(lines)*tech.RFILineBandwidthGbps < gbps {
		lines++
	}
	return lines
}

// AggregateBytes returns the plan's total allocated bandwidth per cycle.
func (p *Plan) AggregateBytes() int {
	total := 0
	for _, b := range p.Bands {
		total += b.WidthBytes
	}
	return total
}

// Validate checks physical consistency: no transmitter drives two bands,
// no receiver listens on two bands, and the line budget holds. Every
// violation found is reported (joined into one error), not just the
// first; a line-budget overflow is broken down by band group — how much
// of the demand comes from the unicast shortcut bands and how much from
// the multicast band — so the caller knows which allocation to shrink.
func (p *Plan) Validate() error {
	var errs []error
	tx := map[int]int{}
	rx := map[int]int{}
	for _, b := range p.Bands {
		if b.Tx >= 0 {
			if prev, ok := tx[b.Tx]; ok {
				errs = append(errs, fmt.Errorf("rfi: router %d transmits on bands %d and %d", b.Tx, prev, b.Index))
			} else {
				tx[b.Tx] = b.Index
			}
		}
		for _, r := range b.Rx {
			if prev, ok := rx[r]; ok {
				errs = append(errs, fmt.Errorf("rfi: router %d receives on bands %d and %d", r, prev, b.Index))
			} else {
				rx[r] = b.Index
			}
		}
	}
	if p.Lines > tech.RFITransmissionLines {
		var uniBytes, uniBands, mcBytes, mcBands int
		for _, b := range p.Bands {
			if b.Multicast {
				mcBytes += b.WidthBytes
				mcBands++
			} else {
				uniBytes += b.WidthBytes
				uniBands++
			}
		}
		errs = append(errs, fmt.Errorf(
			"rfi: plan needs %d lines, bundle has %d (unicast: %d bands, %d B/cycle, %d lines; multicast: %d bands, %d B/cycle, %d lines)",
			p.Lines, tech.RFITransmissionLines,
			uniBands, uniBytes, linesForBytes(uniBytes),
			mcBands, mcBytes, linesForBytes(mcBytes)))
	}
	return errors.Join(errs...)
}

// linesForBytes converts a per-cycle byte demand to transmission lines.
func linesForBytes(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return linesFor(float64(bytes*8) * tech.NetworkClockHz / 1e9)
}

// Tuning maps each access point to the band its transmitter and receiver
// are tuned to (-1 when off), the paper's "transmitter/receiver tuning"
// reconfiguration step.
type Tuning struct {
	TxBand map[int]int
	RxBand map[int]int
}

// TuningFor derives endpoint tuning from a plan.
func TuningFor(p *Plan) Tuning {
	t := Tuning{TxBand: map[int]int{}, RxBand: map[int]int{}}
	for _, b := range p.Bands {
		if b.Tx >= 0 {
			t.TxBand[b.Tx] = b.Index
		}
		for _, r := range b.Rx {
			t.RxBand[r] = b.Index
		}
	}
	return t
}

// Retunes counts how many endpoint mixers change bands between two
// tunings — the physical work of a reconfiguration.
func Retunes(from, to Tuning) int {
	n := 0
	n += mapDelta(from.TxBand, to.TxBand)
	n += mapDelta(from.RxBand, to.RxBand)
	return n
}

func mapDelta(a, b map[int]int) int {
	n := 0
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			n++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			n++
		}
	}
	return n
}

// ReconfigurationCycles is the cost of switching plans: every router's
// routing table is rewritten in parallel through a single write port (one
// cycle per other router: 99 cycles on the 100-router mesh), which
// dominates mixer retuning. The paper overlaps this with context-switch
// work, so it never delays application start.
func ReconfigurationCycles(routers int) int64 {
	if routers <= 1 {
		return 0
	}
	return int64(routers - 1)
}
