package rfi

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
)

func edges(n int) []shortcut.Edge {
	out := make([]shortcut.Edge, n)
	for i := range out {
		out[i] = shortcut.Edge{From: i, To: 50 + i}
	}
	return out
}

func TestPlanFullBudget(t *testing.T) {
	// 16 shortcuts x 16 B fill the 256 B aggregate exactly.
	p, err := NewPlan(edges(16), 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.AggregateBytes(); got != tech.RFIAggregateBytes {
		t.Errorf("aggregate = %d, want %d", got, tech.RFIAggregateBytes)
	}
	if p.Lines != tech.RFITransmissionLines {
		t.Errorf("lines = %d, want %d (the paper's 43)", p.Lines, tech.RFITransmissionLines)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanOverBudgetRejected(t *testing.T) {
	if _, err := NewPlan(edges(17), 16, nil); err == nil {
		t.Error("17 x 16B should exceed the 256B aggregate")
	}
	// 16 shortcuts plus a multicast band also exceed it; 15+MC fits.
	if _, err := NewPlan(edges(16), 16, []int{1, 2}); err == nil {
		t.Error("16 shortcuts + multicast should exceed the aggregate")
	}
	p, err := NewPlan(edges(15), 16, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Bands) != 16 {
		t.Errorf("bands = %d, want 16 (15 shortcuts + 1 multicast)", len(p.Bands))
	}
	mc := p.Bands[15]
	if !mc.Multicast || len(mc.Rx) != 3 || mc.Tx != -1 {
		t.Errorf("multicast band malformed: %+v", mc)
	}
}

func TestPlanMatchesPaperMCSC(t *testing.T) {
	// The paper's MC+SC configuration: 15 adaptive shortcuts and 35
	// multicast receivers on the 50-AP placement.
	m := topology.New10x10()
	aps := m.RFPlacement(50)
	sc := edges(15)
	var rx []int
	taken := map[int]bool{}
	for _, e := range sc {
		taken[e.To] = true
	}
	for _, id := range aps {
		if !taken[id] {
			rx = append(rx, id)
		}
	}
	p, err := NewPlan(sc, 16, rx)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesDoubleTuning(t *testing.T) {
	p, err := NewPlan([]shortcut.Edge{{From: 1, To: 2}, {From: 3, To: 4}}, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Bands[1].Tx = 1 // same Tx as band 0
	if err := p.Validate(); err == nil {
		t.Error("duplicate transmitter not caught")
	}
	p, _ = NewPlan([]shortcut.Edge{{From: 1, To: 2}, {From: 3, To: 4}}, 16, nil)
	p.Bands[1].Rx = []int{2}
	if err := p.Validate(); err == nil {
		t.Error("duplicate receiver not caught")
	}
}

func TestValidateReportsAllViolations(t *testing.T) {
	p, err := NewPlan([]shortcut.Edge{{From: 1, To: 2}, {From: 3, To: 4}, {From: 5, To: 6}}, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Bands[1].Tx = 1        // duplicates band 0's transmitter
	p.Bands[2].Rx = []int{2} // duplicates band 0's receiver
	err = p.Validate()
	if err == nil {
		t.Fatal("two violations not caught")
	}
	for _, want := range []string{
		"router 1 transmits on bands 0 and 1",
		"router 2 receives on bands 0 and 2",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

func TestValidateOverflowBreakdown(t *testing.T) {
	// Hand-build an over-budget plan (NewPlan refuses to) and check the
	// overflow error attributes demand to the unicast and multicast band
	// groups separately.
	p := &Plan{
		Bands: []Band{
			{Index: 0, WidthBytes: 16, Tx: 1, Rx: []int{2}},
			{Index: 1, WidthBytes: 16, Tx: 3, Rx: []int{4}},
			{Index: 2, WidthBytes: 16, Multicast: true, Tx: -1, Rx: []int{5, 6}},
		},
		Lines: tech.RFITransmissionLines + 5,
	}
	err := p.Validate()
	if err == nil {
		t.Fatal("line overflow not caught")
	}
	for _, want := range []string{
		fmt.Sprintf("needs %d lines, bundle has %d", p.Lines, tech.RFITransmissionLines),
		"unicast: 2 bands, 32 B/cycle",
		"multicast: 1 bands, 16 B/cycle",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

func TestBandCarriersDistinct(t *testing.T) {
	p, _ := NewPlan(edges(16), 16, nil)
	seen := map[float64]bool{}
	for _, b := range p.Bands {
		if seen[b.CarrierGHz] {
			t.Fatalf("carrier %v GHz reused", b.CarrierGHz)
		}
		seen[b.CarrierGHz] = true
		if b.BandwidthGbps() != 256 {
			t.Errorf("band bandwidth = %v Gbps, want 256", b.BandwidthGbps())
		}
	}
}

func TestTuningAndRetunes(t *testing.T) {
	p1, _ := NewPlan([]shortcut.Edge{{From: 1, To: 2}, {From: 3, To: 4}}, 16, nil)
	p2, _ := NewPlan([]shortcut.Edge{{From: 1, To: 2}, {From: 5, To: 6}}, 16, nil)
	t1, t2 := TuningFor(p1), TuningFor(p2)
	if t1.TxBand[1] != 0 || t1.RxBand[4] != 1 {
		t.Fatalf("tuning wrong: %+v", t1)
	}
	// Shortcut (1,2) is unchanged; (3,4) -> (5,6) retunes one Tx off, one
	// Tx on, one Rx off, one Rx on = 4 mixer changes.
	if got := Retunes(t1, t2); got != 4 {
		t.Errorf("retunes = %d, want 4", got)
	}
	if got := Retunes(t1, t1); got != 0 {
		t.Errorf("self retunes = %d, want 0", got)
	}
}

func TestReconfigurationCycles(t *testing.T) {
	// 100-router mesh: 99 cycles, exactly the paper's figure.
	if got := ReconfigurationCycles(100); got != 99 {
		t.Errorf("reconfiguration = %d cycles, want 99", got)
	}
	if got := ReconfigurationCycles(1); got != 0 {
		t.Errorf("single-router reconfiguration = %d, want 0", got)
	}
}

func TestNarrowBandsAllowMore(t *testing.T) {
	// The width ablation: 8 B bands allow 32 shortcuts in the aggregate.
	p, err := NewPlan(edges(32), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.AggregateBytes(); got != tech.RFIAggregateBytes {
		t.Errorf("aggregate = %d, want %d", got, tech.RFIAggregateBytes)
	}
	if _, err := NewPlan(edges(33), 8, nil); err == nil {
		t.Error("33 x 8B should exceed the aggregate")
	}
}
