// Package rfnoc is the public API of this reproduction of "CMP
// network-on-chip overlaid with multi-band RF-interconnect" (Chang et
// al., HPCA 2008) and its power-reduction follow-on: a flit-level CMP
// NoC simulator with a multi-band RF-interconnect overlay, shortcut
// selection, RF multicast, and the power/area models needed to
// regenerate the papers' evaluation.
//
// The three things most users want:
//
//   - Simulate a design point: build a Config (BaselineConfig,
//     StaticConfig, AdaptiveConfig...), pick a workload (Pattern or App
//     generators from NewPatternTraffic/NewAppTraffic, or your own
//     Generator), and call Simulate.
//   - Select shortcuts: StaticShortcuts for architecture-specific sets,
//     AdaptiveShortcuts for application-specific sets driven by a
//     frequency profile (ProfileTraffic).
//   - Regenerate the paper: the Figure/Table functions in this package
//     mirror cmd/experiments.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package rfnoc

import (
	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Core types, re-exported from the implementation packages.
type (
	// Mesh is the 10x10 CMP floorplan: 64 cores, 32 cache banks in four
	// clusters, 4 memory ports on the corners.
	Mesh = topology.Mesh

	// Coord is a router position.
	Coord = topology.Coord

	// NodeKind classifies a router's local component.
	NodeKind = topology.NodeKind

	// LinkWidth is a mesh link width (16, 8 or 4 bytes per cycle).
	LinkWidth = tech.LinkWidth

	// Config describes one network design point for the simulator.
	Config = noc.Config

	// Network is a running simulation.
	Network = noc.Network

	// Message is one network message.
	Message = noc.Message

	// Class is a message class (request, data, memory line, invalidate,
	// fill).
	Class = noc.Class

	// NetStats holds the raw activity counters of a simulation.
	NetStats = noc.Stats

	// MulticastMode selects multicast delivery (unicast expansion, VCT,
	// or RF-I broadcast).
	MulticastMode = noc.MulticastMode

	// ShortcutEdge is one unidirectional RF-I (or wire) shortcut.
	ShortcutEdge = shortcut.Edge

	// Generator produces workload messages cycle by cycle.
	Generator = traffic.Generator

	// Pattern is one of the paper's seven probabilistic traces.
	Pattern = traffic.Pattern

	// App is one of the synthetic application traces standing in for the
	// paper's Simics-captured PARSEC/SPECjbb traces.
	App = traffic.App

	// PowerBreakdown is average power in watts by component.
	PowerBreakdown = power.Breakdown

	// AreaBreakdown is silicon area in mm^2 by component (Table 2).
	AreaBreakdown = power.Area

	// Design names a paper design point (kind, width, access points,
	// multicast mode).
	Design = experiments.Design

	// DesignKind distinguishes baseline/static/wire/adaptive overlays.
	DesignKind = experiments.DesignKind

	// Options controls simulation length and workload intensity.
	Options = experiments.Options

	// Result is one (workload, design) measurement.
	Result = experiments.Result

	// CoherenceWorkload parameterizes the directory-protocol traffic
	// generator.
	CoherenceWorkload = coherence.Workload

	// CoherenceProtocol is the directory engine (a Generator).
	CoherenceProtocol = coherence.Protocol

	// Observer receives simulation events from the router pipeline
	// (flit departures, packet deliveries, cycle boundaries). Attach
	// with Network.AttachObserver or SimulateObserved; embed
	// BaseObserver to implement a subset.
	Observer = noc.Observer

	// BaseObserver is a no-op Observer for embedding.
	BaseObserver = noc.BaseObserver

	// AuditReport is a consistency snapshot from Network.Audit: flit
	// conservation, credit sanity, and forward-progress evidence.
	AuditReport = noc.AuditReport

	// LatencyRecorder collects O(1)-memory packet- and flit-latency
	// histograms (p50/p90/p99/max).
	LatencyRecorder = obs.LatencyRecorder

	// LatencySummary is a percentile digest of a latency histogram.
	LatencySummary = obs.Summary

	// LatencyHistogram is the underlying fixed-memory log-linear
	// histogram.
	LatencyHistogram = obs.Histogram

	// LinkTimeline samples per-port link occupancy in cycle windows,
	// exportable as CSV or JSON.
	LinkTimeline = obs.LinkTimeline

	// InvariantChecker audits flit conservation, VC credit sanity and
	// forward progress every K cycles, panicking with a router dump on
	// violation.
	InvariantChecker = obs.InvariantChecker
)

// Link widths.
const (
	Width16B = tech.Width16B
	Width8B  = tech.Width8B
	Width4B  = tech.Width4B
)

// Node kinds.
const (
	Core   = topology.Core
	Cache  = topology.Cache
	Memory = topology.Memory
)

// Message classes (sizes per the paper: 7 B, 39 B, 132 B).
const (
	Request    = noc.Request
	Data       = noc.Data
	MemLine    = noc.MemLine
	Invalidate = noc.Invalidate
	Fill       = noc.Fill
)

// Multicast modes.
const (
	MulticastExpand = noc.MulticastExpand
	MulticastVCT    = noc.MulticastVCT
	MulticastRF     = noc.MulticastRF
)

// Design kinds.
const (
	Baseline   = experiments.Baseline
	Static     = experiments.Static
	WireStatic = experiments.WireStatic
	Adaptive   = experiments.Adaptive
)

// Probabilistic trace patterns (Table 1).
const (
	Uniform  = traffic.Uniform
	UniDF    = traffic.UniDF
	BiDF     = traffic.BiDF
	HotBiDF  = traffic.HotBiDF
	Hotspot1 = traffic.Hotspot1
	Hotspot2 = traffic.Hotspot2
	Hotspot4 = traffic.Hotspot4
)

// Application traces.
const (
	X264          = traffic.X264
	Bodytrack     = traffic.Bodytrack
	Fluidanimate  = traffic.Fluidanimate
	Streamcluster = traffic.Streamcluster
	SPECjbb       = traffic.SPECjbb
)

// RF-I budget constants from the paper.
const (
	// ShortcutBudget is the number of 16 B shortcuts the 256 B aggregate
	// RF-I bandwidth affords.
	ShortcutBudget = tech.ShortcutBudget
	// RFIAggregateBytes is the total RF-I bandwidth per network cycle.
	RFIAggregateBytes = tech.RFIAggregateBytes
)

// NewMesh returns the paper's 10x10 floorplan.
func NewMesh() *Mesh { return topology.New10x10() }

// NewNetwork builds a simulator for a configuration.
func NewNetwork(cfg Config) *Network { return noc.New(cfg) }

// Patterns lists the seven probabilistic traces in the paper's order.
func Patterns() []Pattern { return traffic.Patterns() }

// Apps lists the five application traces.
func Apps() []App { return traffic.Apps() }

// NewPatternTraffic builds a Table 1 probabilistic trace generator. A
// rate of 0 selects the calibrated default.
func NewPatternTraffic(m *Mesh, p Pattern, rate float64, seed int64) Generator {
	return traffic.NewProbabilistic(m, p, rate, seed)
}

// Permutation is a classic NoC synthetic pattern (transpose,
// bit-complement, bit-reverse, shuffle), included as extension workloads
// for the routing studies.
type Permutation = traffic.Permutation

// Classic permutation patterns.
const (
	TransposePattern     = traffic.Transpose
	BitComplementPattern = traffic.BitComplement
	BitReversePattern    = traffic.BitReverse
	ShufflePattern       = traffic.Shuffle
)

// NewPermutationTraffic builds a classic permutation-pattern generator
// over the 64-core space.
func NewPermutationTraffic(m *Mesh, p Permutation, rate float64, seed int64) Generator {
	return traffic.NewSynthetic(m, p, rate, seed)
}

// NewAppTraffic builds a synthetic application trace generator.
func NewAppTraffic(m *Mesh, a App, rate float64, seed int64) Generator {
	return traffic.NewAppTrace(m, a, rate, seed)
}

// NewMulticastTraffic augments a base workload with coherence multicasts
// at the given destination-set locality (20 or 50 in the paper).
func NewMulticastTraffic(m *Mesh, base Generator, rate float64, localityPct int, seed int64) Generator {
	return traffic.NewMulticastAugment(m, base, rate, localityPct, seed)
}

// NewCoherenceTraffic builds the directory-protocol generator, whose
// invalidates and fills are the paper's two multicast message types.
func NewCoherenceTraffic(m *Mesh, w CoherenceWorkload, seed int64) *CoherenceProtocol {
	return coherence.New(m, w, seed)
}

// ProfileTraffic dry-runs a fresh generator and returns the inter-router
// message-frequency matrix F(x,y) that drives application-specific
// shortcut selection.
func ProfileTraffic(g Generator, m *Mesh, cycles int64) [][]int64 {
	return traffic.FrequencyMatrix(g, m.N(), cycles)
}

// StaticShortcuts selects the architecture-specific shortcut set
// (Section 3.2.1, max-cost heuristic).
func StaticShortcuts(m *Mesh, budget int) []ShortcutEdge {
	return experiments.StaticShortcuts(m, budget)
}

// AdaptiveShortcuts selects the application-specific shortcut set
// (Section 3.2.2) for the given RF-enabled routers and traffic profile.
func AdaptiveShortcuts(m *Mesh, rfEnabled []int, freq [][]int64, budget int) []ShortcutEdge {
	return experiments.AdaptiveShortcuts(m, rfEnabled, freq, budget)
}

// BaselineConfig is the plain mesh at the given width.
func BaselineConfig(m *Mesh, w LinkWidth) Config {
	return Config{Mesh: m, Width: w}
}

// StaticConfig overlays the fixed architecture-specific shortcuts.
func StaticConfig(m *Mesh, w LinkWidth) Config {
	return Config{Mesh: m, Width: w, Shortcuts: StaticShortcuts(m, ShortcutBudget)}
}

// AdaptiveConfig overlays application-specific shortcuts selected for the
// given workload profile, with rfRouters access points (25, 50 or 100).
func AdaptiveConfig(m *Mesh, w LinkWidth, rfRouters int, freq [][]int64) Config {
	rf := m.RFPlacement(rfRouters)
	return Config{
		Mesh: m, Width: w, RFEnabled: rf,
		Shortcuts: AdaptiveShortcuts(m, rf, freq, ShortcutBudget),
	}
}

// Simulate drives gen against cfg for opts.Cycles plus drain and returns
// the measurement (latency, power, area, raw counters). Set
// opts.Histograms to also collect latency percentile digests; under
// "go test" an invariant checker rides along automatically.
func Simulate(cfg Config, gen Generator, opts Options) Result {
	return experiments.Run(cfg, gen, opts)
}

// SimulateObserved is Simulate with additional observers attached for
// the duration of the run (latency recorders, link timelines, invariant
// checkers, or custom instrumentation).
func SimulateObserved(cfg Config, gen Generator, opts Options, observers ...Observer) Result {
	return experiments.RunObserved(cfg, gen, opts, observers...)
}

// NewLatencyRecorder returns an empty latency-distribution observer.
func NewLatencyRecorder() *LatencyRecorder { return obs.NewLatencyRecorder() }

// NewLinkTimeline returns a link-occupancy timeline sampling every
// window cycles (default 1000 if window <= 0).
func NewLinkTimeline(window int64) *LinkTimeline { return obs.NewLinkTimeline(window) }

// NewInvariantChecker returns a checker with the default audit period
// and deadlock horizon; it panics (with a dump of the stuck router) on
// the first violated invariant.
func NewInvariantChecker() *InvariantChecker { return obs.NewInvariantChecker() }

// ComputePower converts raw counters to the average-power breakdown.
func ComputePower(cfg Config, s NetStats) PowerBreakdown {
	return power.Compute(noc.New(cfg).Config(), s)
}

// ComputeArea returns the Table 2 area decomposition of a design.
func ComputeArea(cfg Config) AreaBreakdown {
	return power.ComputeArea(noc.New(cfg).Config())
}
