package rfnoc_test

import (
	"testing"

	rfnoc "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	m := rfnoc.NewMesh()
	gen := rfnoc.NewPatternTraffic(m, rfnoc.Uniform, 0, 1)
	r := rfnoc.Simulate(rfnoc.BaselineConfig(m, rfnoc.Width16B), gen, rfnoc.Options{Cycles: 5000})
	if !r.Drained {
		t.Fatal("network did not drain")
	}
	if r.AvgLatency <= 0 || r.PowerW <= 0 || r.AreaMM2 <= 0 {
		t.Fatalf("implausible result: %+v", r)
	}
}

func TestPublicAdaptiveFlow(t *testing.T) {
	m := rfnoc.NewMesh()
	freq := rfnoc.ProfileTraffic(rfnoc.NewPatternTraffic(m, rfnoc.Hotspot1, 0, 7), m, 10000)
	cfg := rfnoc.AdaptiveConfig(m, rfnoc.Width4B, 50, freq)
	if len(cfg.Shortcuts) != rfnoc.ShortcutBudget {
		t.Fatalf("adaptive config selected %d shortcuts, want %d",
			len(cfg.Shortcuts), rfnoc.ShortcutBudget)
	}
	gen := rfnoc.NewPatternTraffic(m, rfnoc.Hotspot1, 0, 7)
	ad := rfnoc.Simulate(cfg, gen, rfnoc.Options{Cycles: 8000})

	base := rfnoc.Simulate(rfnoc.BaselineConfig(m, rfnoc.Width4B),
		rfnoc.NewPatternTraffic(m, rfnoc.Hotspot1, 0, 7), rfnoc.Options{Cycles: 8000})
	if ad.AvgLatency >= base.AvgLatency {
		t.Errorf("adaptive 4B latency (%.1f) should beat baseline 4B (%.1f)",
			ad.AvgLatency, base.AvgLatency)
	}
}

func TestPublicStaticBeatsBaselineLatency(t *testing.T) {
	m := rfnoc.NewMesh()
	opts := rfnoc.Options{Cycles: 8000}
	base := rfnoc.Simulate(rfnoc.BaselineConfig(m, rfnoc.Width16B),
		rfnoc.NewPatternTraffic(m, rfnoc.Uniform, 0, 3), opts)
	st := rfnoc.Simulate(rfnoc.StaticConfig(m, rfnoc.Width16B),
		rfnoc.NewPatternTraffic(m, rfnoc.Uniform, 0, 3), opts)
	if st.AvgLatency >= base.AvgLatency {
		t.Errorf("static shortcuts (%.1f) should beat baseline (%.1f)",
			st.AvgLatency, base.AvgLatency)
	}
	if st.PowerW <= base.PowerW {
		t.Errorf("static shortcuts (%.2fW) should cost more power than baseline (%.2fW)",
			st.PowerW, base.PowerW)
	}
}

func TestPublicAreaTable(t *testing.T) {
	m := rfnoc.NewMesh()
	rows := rfnoc.Table2Area(m)
	if len(rows) != 9 {
		t.Fatalf("Table 2 has %d rows, want 9", len(rows))
	}
	// Spot-check the headline corners of the table.
	if rows[0].Total < 30.2 || rows[0].Total > 30.4 {
		t.Errorf("16B baseline total = %.2f, want ~30.29", rows[0].Total)
	}
}

func TestPublicCoherenceTraffic(t *testing.T) {
	m := rfnoc.NewMesh()
	p := rfnoc.NewCoherenceTraffic(m, rfnoc.CoherenceWorkload{}, 5)
	cfg := rfnoc.BaselineConfig(m, rfnoc.Width16B)
	cfg.Multicast = rfnoc.MulticastRF
	cfg.RFEnabled = m.RFPlacement(50)
	r := rfnoc.Simulate(cfg, p, rfnoc.Options{Cycles: 6000})
	if r.Stats.MulticastDeliveries == 0 {
		t.Error("coherence workload delivered no multicasts")
	}
}

func TestPublicMulticastModes(t *testing.T) {
	m := rfnoc.NewMesh()
	for _, mode := range []rfnoc.MulticastMode{rfnoc.MulticastExpand, rfnoc.MulticastVCT, rfnoc.MulticastRF} {
		cfg := rfnoc.BaselineConfig(m, rfnoc.Width16B)
		cfg.Multicast = mode
		if mode == rfnoc.MulticastRF {
			cfg.RFEnabled = m.RFPlacement(50)
		}
		base := rfnoc.NewPatternTraffic(m, rfnoc.Uniform, 0.004, 2)
		gen := rfnoc.NewMulticastTraffic(m, base, 0.03, 20, 2)
		r := rfnoc.Simulate(cfg, gen, rfnoc.Options{Cycles: 6000})
		if !r.Drained {
			t.Errorf("%v: network did not drain", mode)
		}
		if r.Stats.MulticastDeliveries == 0 {
			t.Errorf("%v: no multicast deliveries", mode)
		}
	}
}

func TestPublicLoadCurveAndScaling(t *testing.T) {
	m := rfnoc.NewMesh()
	curves := rfnoc.LoadLatencyCurves(m, rfnoc.Width4B, rfnoc.Uniform,
		rfnoc.Options{Cycles: 3000})
	if len(curves) != 3 {
		t.Fatalf("curves = %d, want 3", len(curves))
	}
	rows := rfnoc.ScalingStudy([]int{8}, rfnoc.Options{Cycles: 3000, ProfileCycles: 3000})
	if len(rows) != 1 || rows[0].Cores != 36 {
		t.Fatalf("scaling rows = %+v", rows)
	}
	big := rfnoc.NewScaledMesh(12, 12)
	if big.N() != 144 {
		t.Errorf("scaled mesh N = %d", big.N())
	}
}

func TestPublicPermutationTraffic(t *testing.T) {
	m := rfnoc.NewMesh()
	g := rfnoc.NewPermutationTraffic(m, rfnoc.TransposePattern, 0.02, 1)
	r := rfnoc.Simulate(rfnoc.BaselineConfig(m, rfnoc.Width16B), g, rfnoc.Options{Cycles: 3000})
	if !r.Drained || r.Stats.PacketsEjected == 0 {
		t.Fatalf("transpose run failed: %+v", r.Stats.PacketsEjected)
	}
}
