// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md and microbenchmarks of the simulator core.
//
// Each figure benchmark runs the full experiment at a reduced cycle
// budget per iteration (the shapes stabilize well below the paper's 1M
// cycles); cmd/experiments regenerates the same artifacts at full
// length. Run with:
//
//	go test -bench=. -benchmem
package rfnoc_test

import (
	"testing"

	rfnoc "repro"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/shortcut"
	"repro/internal/tech"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// benchOpts trims the per-iteration simulation length.
func benchOpts() rfnoc.Options {
	return rfnoc.Options{Cycles: 4000, DrainCycles: 200000, Seed: 1, ProfileCycles: 5000}
}

// ---------------------------------------------------------------------
// One benchmark per paper artifact.
// ---------------------------------------------------------------------

// BenchmarkFig1TrafficHistograms regenerates Figure 1 (traffic by
// manhattan distance for the application traces).
func BenchmarkFig1TrafficHistograms(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		r := rfnoc.Figure1(m, benchOpts())
		if len(r.Apps) != 5 {
			b.Fatal("missing application histograms")
		}
	}
}

// BenchmarkFig7RFEnabledRouters regenerates Figure 7 (static vs
// adaptive-50 vs adaptive-25 on the 16B mesh).
func BenchmarkFig7RFEnabledRouters(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		r := rfnoc.Figure7(m, benchOpts())
		means := r.Means()
		if len(means) != 3 {
			b.Fatal("want 3 designs")
		}
		// Shape assertions from the paper: adaptive-50 is the fastest,
		// and every overlay costs power at 16B.
		if means[1].Latency >= 1 || means[1].Power <= 1 {
			b.Fatalf("adaptive-50 shape wrong: %+v", means[1])
		}
	}
}

// BenchmarkFig8BandwidthReduction regenerates Figure 8 (16/8/4B x
// baseline/static/adaptive).
func BenchmarkFig8BandwidthReduction(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		r := rfnoc.Figure8(m, benchOpts())
		if len(r.Designs) != 9 {
			b.Fatal("want 9 design points")
		}
	}
}

// BenchmarkTable2Area regenerates Table 2 (area of the nine designs).
func BenchmarkTable2Area(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		rows := rfnoc.Table2Area(m)
		if len(rows) != 9 {
			b.Fatal("want 9 rows")
		}
	}
}

// BenchmarkFig9Multicast regenerates Figure 9 (VCT vs MC vs MC+SC at
// 20%/50% destination-set locality).
func BenchmarkFig9Multicast(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		r := rfnoc.Figure9(m, benchOpts())
		if len(r.Configs) != 6 {
			b.Fatal("want 6 multicast configs")
		}
	}
}

// BenchmarkFig10aUnicast regenerates Figure 10a (unified unicast
// power-performance lines).
func BenchmarkFig10aUnicast(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		lines := rfnoc.Figure10a(m, benchOpts())
		if len(lines) != 4 {
			b.Fatal("want 4 architectures")
		}
	}
}

// BenchmarkFig10bMulticast regenerates Figure 10b (unified multicast
// power-performance lines).
func BenchmarkFig10bMulticast(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		lines := rfnoc.Figure10b(m, benchOpts())
		if len(lines) != 4 {
			b.Fatal("want 4 architectures")
		}
	}
}

// BenchmarkAppStudy regenerates the Section 5.1.2 application-trace
// comparison (adaptive 4B vs 16B baseline).
func BenchmarkAppStudy(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		rs := rfnoc.ApplicationStudy(m, benchOpts())
		if len(rs) != 5 {
			b.Fatal("want 5 applications")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md design choices).
// ---------------------------------------------------------------------

// BenchmarkAblationHeuristicPermutation times the Figure 3(a)
// permutation-graph heuristic on the full mesh.
func BenchmarkAblationHeuristicPermutation(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		perm, maxc := experiments.AblationHeuristics(m, tech.ShortcutBudget)
		// The paper found the two heuristics comparable; hold them to
		// within 10% of each other on the objective.
		if float64(maxc) > 1.10*float64(perm) {
			b.Fatalf("heuristics diverged: perm=%d maxcost=%d", perm, maxc)
		}
	}
}

// BenchmarkAblationRegionSelection compares region-based vs pair-based
// application-specific selection on a hotspot workload.
func BenchmarkAblationRegionSelection(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		region, pair := experiments.AblationRegion(m, benchOpts())
		if region <= 0 || pair <= 0 {
			b.Fatal("ablation produced no latencies")
		}
	}
}

// BenchmarkAblationEscapeVCTimeout sweeps the escape-VC re-route
// timeout.
func BenchmarkAblationEscapeVCTimeout(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationEscapeVC(m, []int64{4, 16, 64}, benchOpts())
		if len(res) != 3 {
			b.Fatal("want 3 timeout points")
		}
	}
}

// BenchmarkAblationShortcutWidth splits the fixed RF-I aggregate into
// different shortcut widths.
func BenchmarkAblationShortcutWidth(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationShortcutWidth(m, []int{8, 16, 32}, benchOpts())
		if len(res) != 3 {
			b.Fatal("want 3 width points")
		}
	}
}

// ---------------------------------------------------------------------
// Simulator microbenchmarks.
// ---------------------------------------------------------------------

// benchNetworkCycles reports simulated network cycles per second.
func benchNetworkCycles(b *testing.B, cfg rfnoc.Config, pat rfnoc.Pattern) {
	gen := traffic.NewProbabilistic(cfg.Mesh, pat, 0, 1)
	n := rfnoc.NewNetwork(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Tick(n.Now(), n.Inject)
		n.Step()
	}
	b.ReportMetric(float64(n.Stats().FlitsEjected)/float64(b.N), "flits/cycle")
}

// BenchmarkNetworkStep16B measures simulator throughput on the loaded
// 16B baseline.
func BenchmarkNetworkStep16B(b *testing.B) {
	m := rfnoc.NewMesh()
	benchNetworkCycles(b, rfnoc.BaselineConfig(m, rfnoc.Width16B), rfnoc.Uniform)
}

// BenchmarkNetworkStep4BShortcuts measures throughput on the 4B mesh
// with the static overlay (more flits in flight, RF ports active).
func BenchmarkNetworkStep4BShortcuts(b *testing.B) {
	m := rfnoc.NewMesh()
	benchNetworkCycles(b, rfnoc.StaticConfig(m, rfnoc.Width4B), rfnoc.Hotspot2)
}

// BenchmarkShortcutSelectionMaxCost times the O(B*V^3) heuristic.
func BenchmarkShortcutSelectionMaxCost(b *testing.B) {
	m := topology.New10x10()
	g := m.Graph()
	p := shortcut.Params{Budget: 16, Eligible: m.ShortcutEligible}
	for i := 0; i < b.N; i++ {
		if got := shortcut.SelectMaxCost(g, p); len(got) != 16 {
			b.Fatal("selection failed")
		}
	}
}

// BenchmarkShortcutSelectionPermutation times the incremental
// permutation-graph heuristic.
func BenchmarkShortcutSelectionPermutation(b *testing.B) {
	m := topology.New10x10()
	g := m.Graph()
	p := shortcut.Params{Budget: 4, Eligible: m.ShortcutEligible}
	for i := 0; i < b.N; i++ {
		if got := shortcut.SelectGreedyPermutation(g, p); len(got) != 4 {
			b.Fatal("selection failed")
		}
	}
}

// BenchmarkShortcutSelectionRegion times region-based application-
// specific selection on a hotspot profile.
func BenchmarkShortcutSelectionRegion(b *testing.B) {
	m := topology.New10x10()
	g := m.Graph()
	freq := traffic.FrequencyMatrix(traffic.NewProbabilistic(m, traffic.Hotspot1, 0, 1), m.N(), 10000)
	p := shortcut.Params{
		Budget: 16, Eligible: m.ShortcutEligible,
		Freq: freq, MeshW: m.W, MeshH: m.H,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := shortcut.SelectRegionBased(g, p); len(got) == 0 {
			b.Fatal("selection failed")
		}
	}
}

// BenchmarkAPSP times all-pairs shortest paths on the mesh graph, the
// inner loop of every selector.
func BenchmarkAPSP(b *testing.B) {
	g := graph.Grid(10, 10)
	for i := 0; i < b.N; i++ {
		if apsp := g.AllPairs(); apsp[0][99] != 18 {
			b.Fatal("wrong distance")
		}
	}
}

// BenchmarkRFMulticast measures the RF multicast path end to end.
func BenchmarkRFMulticast(b *testing.B) {
	m := rfnoc.NewMesh()
	cfg := rfnoc.BaselineConfig(m, rfnoc.Width16B)
	cfg.Multicast = rfnoc.MulticastRF
	cfg.RFEnabled = m.RFPlacement(50)
	n := rfnoc.NewNetwork(cfg)
	src := m.CentralBank(0)
	dbv := uint64(0)
	for ci := 0; ci < 64; ci += 3 {
		dbv |= 1 << uint(ci)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Inject(rfnoc.Message{Src: src, Class: rfnoc.Invalidate, Multicast: true, DBV: dbv, Inject: n.Now()})
		for j := 0; j < 8; j++ {
			n.Step()
		}
	}
	if !n.Drain(1_000_000) {
		b.Fatal("drain failed")
	}
}
