package rfnoc

import (
	"repro/internal/core"
	"repro/internal/rfi"
)

// The adaptive-NoC controller: the paper's reconfiguration flow
// (profile -> select shortcuts -> allocate frequency bands -> rebuild
// routing tables) packaged as one component. See internal/core.
type (
	// Controller manages the adaptive RF-I overlay of one CMP across
	// application switches.
	Controller = core.Controller

	// ReconfigState is the outcome of one reconfiguration: the selected
	// shortcuts, the frequency-band plan, mixer tuning, and the ready
	// simulator configuration.
	ReconfigState = core.State

	// BandPlan is a frequency-division allocation of the RF-I bundle's
	// aggregate bandwidth.
	BandPlan = rfi.Plan

	// Band is one frequency channel of a plan.
	Band = rfi.Band
)

// NewController builds an adaptive-overlay controller for rfRouters
// access points (25, 50 or 100) on a mesh with the given link width.
func NewController(m *Mesh, w LinkWidth, rfRouters int) *Controller {
	return core.NewController(m, w, rfRouters)
}

// NewBandPlan allocates frequency bands for a shortcut set (plus one
// multicast band when mcReceivers is non-nil), enforcing the 256 B/cycle
// aggregate-bandwidth budget of the 43-line bundle.
func NewBandPlan(shortcuts []ShortcutEdge, shortcutWidthBytes int, mcReceivers []int) (*BandPlan, error) {
	return rfi.NewPlan(shortcuts, shortcutWidthBytes, mcReceivers)
}

// ReconfigurationCycles is the routing-table rewrite cost of switching
// plans (99 cycles on the paper's 100-router mesh).
func ReconfigurationCycles(routers int) int64 {
	return rfi.ReconfigurationCycles(routers)
}
