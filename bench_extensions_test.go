package rfnoc_test

// Benchmarks for the extension features: adaptive routing (the HPCA-2008
// contention study), runtime reconfiguration, and the closed-loop core
// model.

import (
	"bytes"
	"testing"

	rfnoc "repro"
	"repro/internal/experiments"
	"repro/internal/traffic"
)

// BenchmarkAblationAdaptiveRouting compares deterministic table routing
// against minimal-adaptive routing on a convergecast pattern (a single
// destination router) at 4 B, where XY funnels everything through two
// inbound links.
func BenchmarkAblationAdaptiveRouting(b *testing.B) {
	m := rfnoc.NewMesh()
	run := func(adaptive bool) float64 {
		cfg := rfnoc.BaselineConfig(m, rfnoc.Width4B)
		cfg.AdaptiveRouting = adaptive
		n := rfnoc.NewNetwork(cfg)
		dst := m.ID(5, 5)
		for cyc := 0; cyc < 4000; cyc++ {
			if cyc%4 == 0 {
				src := (cyc * 37) % 100
				if src != dst {
					n.Inject(rfnoc.Message{Src: src, Dst: dst, Class: rfnoc.Data, Inject: n.Now()})
				}
			}
			n.Step()
		}
		if !n.Drain(2_000_000) {
			b.Fatal("no drain")
		}
		s := n.Stats()
		return s.AvgFlitLatency()
	}
	for i := 0; i < b.N; i++ {
		det, ad := run(false), run(true)
		if ad >= det {
			b.Fatalf("adaptive (%.1f) should beat deterministic (%.1f)", ad, det)
		}
		b.ReportMetric(det/ad, "speedup")
	}
}

// BenchmarkClosedLoopAdaptive measures the system-level (operations per
// core per cycle) effect of the adaptive 4 B overlay under closed-loop
// cores.
func BenchmarkClosedLoopAdaptive(b *testing.B) {
	m := rfnoc.NewMesh()
	params := rfnoc.CPUParams{IssueRate: 0.3, MSHRs: 8, HotBankFraction: 0.04}
	const cycles = 6000
	for i := 0; i < b.N; i++ {
		profNet := rfnoc.NewNetwork(rfnoc.BaselineConfig(m, rfnoc.Width16B))
		prof := rfnoc.NewCPUSystem(m, params, 11)
		if !rfnoc.RunClosedLoop(prof, profNet, cycles) {
			b.Fatal("profile run failed")
		}
		freq := profNet.ObservedFrequency()

		n4 := rfnoc.NewNetwork(rfnoc.BaselineConfig(m, rfnoc.Width4B))
		s4 := rfnoc.NewCPUSystem(m, params, 11)
		if !rfnoc.RunClosedLoop(s4, n4, cycles) {
			b.Fatal("4B run failed")
		}
		na := rfnoc.NewNetwork(rfnoc.AdaptiveConfig(m, rfnoc.Width4B, 50, freq))
		sa := rfnoc.NewCPUSystem(m, params, 11)
		if !rfnoc.RunClosedLoop(sa, na, cycles) {
			b.Fatal("adaptive run failed")
		}
		t4 := s4.Stats().Throughput(cycles, 64)
		ta := sa.Stats().Throughput(cycles, 64)
		if ta <= t4 {
			b.Fatalf("adaptive throughput (%.4f) should beat 4B baseline (%.4f)", ta, t4)
		}
		b.ReportMetric(ta/t4, "throughput-gain")
	}
}

// BenchmarkOnlineReconfiguration measures the runtime-adaptation loop:
// window, quiesce, re-select, retune, continue.
func BenchmarkOnlineReconfiguration(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		ctl := rfnoc.NewController(m, rfnoc.Width4B, 50)
		st, err := ctl.ReconfigureForWorkload(rfnoc.NewPatternTraffic(m, rfnoc.Uniform, 0, 1))
		if err != nil {
			b.Fatal(err)
		}
		net := rfnoc.NewNetwork(st.Config)
		a := rfnoc.NewOnlineAdapter(ctl, net)
		a.Window = 4000
		gen := &rfnoc.PhasedWorkload{
			Phases: []rfnoc.Generator{
				rfnoc.NewPatternTraffic(m, rfnoc.Hotspot1, 0, 2),
				rfnoc.NewPatternTraffic(m, rfnoc.UniDF, 0, 2),
			},
			PhaseCycles: 4000,
		}
		if !a.Run(gen, 16000) {
			b.Fatal("online run failed")
		}
		if a.Stats().Reconfigurations == 0 {
			b.Fatal("no reconfigurations happened")
		}
	}
}

// BenchmarkLoadCurve regenerates the load-latency sweep for the 4B
// designs.
func BenchmarkLoadCurve(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		curves := experiments.LoadLatency(m,
			experiments.LoadCurveDesigns(rfnoc.Width4B), traffic.Uniform,
			[]float64{0.004, 0.012, 0.020}, experiments.Options{Cycles: 4000})
		if len(curves) != 3 {
			b.Fatal("want 3 curves")
		}
	}
}

// BenchmarkRoutingStudy regenerates the XY-vs-adaptive permutation
// comparison.
func BenchmarkRoutingStudy(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		rows := experiments.RoutingStudy(m, experiments.Options{Cycles: 3000})
		if len(rows) != 4 {
			b.Fatal("want 4 patterns")
		}
	}
}

// BenchmarkAblationVCConfig sweeps VC count and buffer depth.
func BenchmarkAblationVCConfig(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		res := experiments.AblationVCConfig(m, []int{2, 8}, []int{2, 4}, experiments.Options{Cycles: 3000})
		if len(res) != 4 {
			b.Fatal("want 4 points")
		}
	}
}

// BenchmarkScalingStudy regenerates the mesh-size scaling comparison.
func BenchmarkScalingStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := rfnoc.ScalingStudy([]int{8, 12}, rfnoc.Options{Cycles: 4000, ProfileCycles: 4000})
		if len(rows) != 2 {
			b.Fatal("want 2 rows")
		}
	}
}

// BenchmarkCoherenceWorkload measures the directory-protocol generator
// driving RF multicast end to end.
func BenchmarkCoherenceWorkload(b *testing.B) {
	m := rfnoc.NewMesh()
	for i := 0; i < b.N; i++ {
		cfg := rfnoc.BaselineConfig(m, rfnoc.Width16B)
		cfg.Multicast = rfnoc.MulticastRF
		cfg.RFEnabled = m.RFPlacement(50)
		n := rfnoc.NewNetwork(cfg)
		p := rfnoc.NewCoherenceTraffic(m, rfnoc.CoherenceWorkload{}, 7)
		for now := int64(0); now < 5000; now++ {
			p.Tick(now, n.Inject)
			n.Step()
		}
		if !n.Drain(500_000) {
			b.Fatal("no drain")
		}
		if n.Stats().MulticastDeliveries == 0 {
			b.Fatal("no multicast work")
		}
	}
}

// BenchmarkTraceReplay measures trace capture and replay round-trip
// throughput (messages per second through the codec).
func BenchmarkTraceReplay(b *testing.B) {
	m := rfnoc.NewMesh()
	gen := traffic.NewMulticastAugment(m,
		traffic.NewProbabilistic(m, traffic.Hotspot2, 0, 9), 0.05, 20, 9)
	var buf bytes.Buffer
	count, err := traffic.WriteTrace(&buf, gen, 20000)
	if err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp, err := traffic.ReadTrace(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if rp.Len() != count {
			b.Fatal("record count mismatch")
		}
	}
}
